"""The session facade and the consolidated ProverConfig.

These tests pin the public surface: ``PoneglyphDB.open`` drives the
full commit -> prove -> verify -> audit workflow, ``ProverConfig``
validates its knobs, and the historical loose-kwarg ``ProverNode``
signature keeps working as a deprecation shim.
"""

import warnings

import pytest

from repro import ArtifactCache, PoneglyphDB, ProverConfig, Session
from repro import parallel
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import INT, STRING
from repro.system import ProverNode, VerifierNode


@pytest.fixture()
def tiny_db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [ColumnDef("a", INT), ColumnDef("grp", STRING), ColumnDef("v", INT)],
            primary_key="a",
        ),
        [
            (1, "x", 10),
            (2, "y", 20),
            (3, "x", 30),
            (4, "y", 40),
            (5, "x", 50),
        ],
    )
    return db


@pytest.fixture()
def tiny_config(tmp_path):
    return ProverConfig(
        k=6, limb_bits=4, value_bits=16, key_bits=16,
        cache_dir=tmp_path / "cache",
    )


class TestProverConfig:
    def test_defaults(self):
        config = ProverConfig()
        assert config.k == 8 and config.n_rows == 256
        assert config.workers == 0 and config.use_cache

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 1},
            {"k": 99},
            {"limb_bits": 0},
            {"value_bits": -3},
            {"key_bits": "wide"},
            {"limb_bits": 8, "value_bits": 4},
            {"workers": -1},
            {"scale": -5},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ProverConfig(**kwargs)

    def test_with_options_revalidates(self):
        config = ProverConfig(k=6)
        assert config.with_options(k=7).k == 7
        assert config.k == 6  # frozen original untouched
        with pytest.raises(ValueError):
            config.with_options(workers=-2)


class TestFacade:
    def test_full_round_trip(self, tiny_db, tiny_config):
        with PoneglyphDB.open(tiny_db, tiny_config) as session:
            assert isinstance(session, Session)
            commitment = session.commit()
            assert session.commitment is commitment
            assert session.audit().valid

            response = session.prove(
                "select grp, sum(v) as total from t group by grp order by total"
            )
            assert response.result == [["y", 60], ["x", 90]]
            report = session.verify(response)
            assert report.accepted, report.reason

            # A forged result is rejected through the same facade.
            import copy

            forged = copy.deepcopy(response)
            forged.result_encoded[0][1] += 1
            assert not session.verify(forged).accepted

    def test_prove_auto_commits(self, tiny_db, tiny_config):
        with PoneglyphDB.open(tiny_db, tiny_config) as session:
            assert session.commitment is None
            response = session.prove("select count(*) as n from t")
            assert session.commitment is not None
            assert session.verify(response).accepted

    def test_second_session_hits_cache(self, tiny_db, tiny_config):
        with PoneglyphDB.open(tiny_db, tiny_config) as first:
            first.prove("select count(*) as n from t")
            assert not first.params_cache_hit  # cold cache
        with PoneglyphDB.open(tiny_db, tiny_config) as second:
            assert second.params_cache_hit
            response = second.prove("select count(*) as n from t")
            assert response.timing.extra.get("keygen_cache_hit") == 1.0
            assert second.verify(response).accepted
            assert "hit" in second.cache_summary()

    def test_cache_disabled(self, tiny_db, tmp_path):
        config = ProverConfig(
            k=6, limb_bits=4, value_bits=16, key_bits=16, use_cache=False
        )
        with PoneglyphDB.open(tiny_db, config) as session:
            assert not session.cache.enabled
            assert not session.params_cache_hit

    def test_session_restores_parallelism(self, tiny_db, tiny_config):
        parallel.configure(0)
        session = PoneglyphDB.open(
            tiny_db, tiny_config.with_options(workers=3, use_cache=False)
        )
        assert parallel.workers() == 3
        session.close()
        assert parallel.workers() == 0

    def test_shared_params_and_cache(self, tiny_db, tiny_config, tmp_path):
        shared = ArtifactCache(tmp_path / "shared")
        with PoneglyphDB.open(tiny_db, tiny_config, cache=shared) as session:
            assert session.cache is shared
        from repro.commit import setup

        params = setup(6)
        with PoneglyphDB.open(tiny_db, tiny_config, params=params) as session:
            assert session.params is params
            assert not session.params_cache_hit

    def test_verify_before_commit_raises(self, tiny_db, tiny_config):
        with PoneglyphDB.open(tiny_db, tiny_config) as session:
            with pytest.raises(RuntimeError):
                session.verifier()
            with pytest.raises(RuntimeError):
                session.audit()


class TestLegacyShims:
    def test_legacy_prover_node_signature_warns_and_works(
        self, tiny_db, params_k6
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(DeprecationWarning):
                ProverNode(
                    tiny_db, params_k6, 6,
                    limb_bits=4, value_bits=16, key_bits=16,
                )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            prover = ProverNode(
                tiny_db, params_k6, 6,
                limb_bits=4, value_bits=16, key_bits=16,
            )
        # The legacy path never touches the artifact cache.
        assert not prover.cache.enabled
        commitment = prover.publish_commitment()
        response = prover.answer("select count(*) as n from t")
        verifier = VerifierNode(params_k6, prover.public_metadata(), commitment)
        assert verifier.verify(response).accepted

    def test_k_alongside_config_rejected(self, tiny_db, params_k6):
        config = ProverConfig(k=6, limb_bits=4, value_bits=16, key_bits=16)
        with pytest.raises(TypeError):
            ProverNode(tiny_db, params_k6, 6, config=config)

    def test_missing_k_and_config_rejected(self, tiny_db, params_k6):
        with pytest.raises(TypeError):
            ProverNode(tiny_db, params_k6)
