"""The session facade and the consolidated ProverConfig.

These tests pin the public surface: ``PoneglyphDB.open`` drives the
full commit -> prove -> verify -> audit workflow, ``ProverConfig``
validates its knobs, the typed error hierarchy routes every facade
failure, and the retired loose-kwarg ``ProverNode`` signature fails
fast with a ``TypeError`` naming the replacement config field.
"""

import pytest

import repro
from repro import ArtifactCache, PoneglyphDB, ProverConfig, Session
from repro import errors, parallel
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import INT, STRING
from repro.system import ProverNode, VerifierNode


@pytest.fixture()
def tiny_db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [ColumnDef("a", INT), ColumnDef("grp", STRING), ColumnDef("v", INT)],
            primary_key="a",
        ),
        [
            (1, "x", 10),
            (2, "y", 20),
            (3, "x", 30),
            (4, "y", 40),
            (5, "x", 50),
        ],
    )
    return db


@pytest.fixture()
def tiny_config(tmp_path):
    return ProverConfig(
        k=6, limb_bits=4, value_bits=16, key_bits=16,
        cache_dir=tmp_path / "cache",
    )


class TestProverConfig:
    def test_defaults(self):
        config = ProverConfig()
        assert config.k == 8 and config.n_rows == 256
        assert config.workers == 0 and config.use_cache

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 1},
            {"k": 99},
            {"limb_bits": 0},
            {"value_bits": -3},
            {"key_bits": "wide"},
            {"limb_bits": 8, "value_bits": 4},
            {"workers": -1},
            {"scale": -5},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ProverConfig(**kwargs)

    def test_with_options_revalidates(self):
        config = ProverConfig(k=6)
        assert config.with_options(k=7).k == 7
        assert config.k == 6  # frozen original untouched
        with pytest.raises(ValueError):
            config.with_options(workers=-2)


class TestFacade:
    def test_full_round_trip(self, tiny_db, tiny_config):
        with PoneglyphDB.open(tiny_db, tiny_config) as session:
            assert isinstance(session, Session)
            commitment = session.commit()
            assert session.commitment is commitment
            assert session.audit().valid

            response = session.prove(
                "select grp, sum(v) as total from t group by grp order by total"
            )
            assert response.result == [["y", 60], ["x", 90]]
            report = session.verify(response)
            assert report.accepted, report.reason

            # A forged result is rejected through the same facade.
            import copy

            forged = copy.deepcopy(response)
            forged.result_encoded[0][1] += 1
            assert not session.verify(forged).accepted

    def test_prove_auto_commits(self, tiny_db, tiny_config):
        with PoneglyphDB.open(tiny_db, tiny_config) as session:
            assert session.commitment is None
            response = session.prove("select count(*) as n from t")
            assert session.commitment is not None
            assert session.verify(response).accepted

    def test_second_session_hits_cache(self, tiny_db, tiny_config):
        with PoneglyphDB.open(tiny_db, tiny_config) as first:
            first.prove("select count(*) as n from t")
            assert not first.params_cache_hit  # cold cache
        with PoneglyphDB.open(tiny_db, tiny_config) as second:
            assert second.params_cache_hit
            response = second.prove("select count(*) as n from t")
            assert response.timing.extra.get("keygen_cache_hit") == 1.0
            assert second.verify(response).accepted
            assert "hit" in second.cache_summary()

    def test_cache_disabled(self, tiny_db, tmp_path):
        config = ProverConfig(
            k=6, limb_bits=4, value_bits=16, key_bits=16, use_cache=False
        )
        with PoneglyphDB.open(tiny_db, config) as session:
            assert not session.cache.enabled
            assert not session.params_cache_hit

    def test_session_restores_parallelism(self, tiny_db, tiny_config):
        parallel.configure(0)
        session = PoneglyphDB.open(
            tiny_db, tiny_config.with_options(workers=3, use_cache=False)
        )
        assert parallel.workers() == 3
        session.close()
        assert parallel.workers() == 0

    def test_shared_params_and_cache(self, tiny_db, tiny_config, tmp_path):
        shared = ArtifactCache(tmp_path / "shared")
        with PoneglyphDB.open(tiny_db, tiny_config, cache=shared) as session:
            assert session.cache is shared
        from repro.commit import setup

        params = setup(6)
        with PoneglyphDB.open(tiny_db, tiny_config, params=params) as session:
            assert session.params is params
            assert not session.params_cache_hit

    def test_verify_before_commit_raises(self, tiny_db, tiny_config):
        with PoneglyphDB.open(tiny_db, tiny_config) as session:
            with pytest.raises(RuntimeError):
                session.verifier()
            with pytest.raises(RuntimeError):
                session.audit()


class TestRetiredLegacySignature:
    """The loose-kwarg ``ProverNode(db, params, k, ...)`` path is gone;
    every use fails fast with a TypeError naming the config field."""

    def test_positional_k_rejected_with_guidance(self, tiny_db, params_k6):
        with pytest.raises(TypeError, match=r"ProverConfig\(.*k="):
            ProverNode(tiny_db, params_k6, 6)

    def test_legacy_kwargs_rejected_with_guidance(self, tiny_db, params_k6):
        with pytest.raises(TypeError, match=r"limb_bits"):
            ProverNode(
                tiny_db, params_k6,
                config=ProverConfig(k=6, limb_bits=4, value_bits=16,
                                    key_bits=16),
                limb_bits=4,
            )

    def test_missing_config_rejected(self, tiny_db, params_k6):
        with pytest.raises(TypeError, match="config"):
            ProverNode(tiny_db, params_k6)

    def test_config_path_round_trips(self, tiny_db, params_k6):
        config = ProverConfig(
            k=6, limb_bits=4, value_bits=16, key_bits=16, use_cache=False
        )
        prover = ProverNode(tiny_db, params_k6, config=config)
        assert not prover.cache.enabled
        commitment = prover.publish_commitment()
        response = prover.answer("select count(*) as n from t")
        verifier = VerifierNode(params_k6, prover.public_metadata(), commitment)
        assert verifier.verify(response).accepted


class TestErrorHierarchy:
    """Every failure surfaced by the public API is a ReproError, while
    staying catchable by the historical builtin types."""

    def test_config_error_is_value_error(self):
        with pytest.raises(errors.ConfigError):
            ProverConfig(k=1)
        assert issubclass(errors.ConfigError, ValueError)
        assert issubclass(errors.ConfigError, errors.ReproError)

    def test_state_error_before_commit(self, tiny_db, tiny_config):
        with PoneglyphDB.open(tiny_db, tiny_config) as session:
            with pytest.raises(errors.StateError):
                session.verifier()

    def test_wire_format_error_is_value_error(self):
        from repro.wire import WireFormatError

        assert WireFormatError is errors.WireFormatError
        assert issubclass(WireFormatError, ValueError)
        assert issubclass(WireFormatError, errors.ReproError)

    def test_service_errors_subclass_service_error(self):
        for exc in (errors.ServiceOverloaded, errors.ServiceClosed,
                    errors.JobFailed, errors.JobNotFound):
            assert issubclass(exc, errors.ServiceError)
            assert issubclass(exc, errors.ReproError)

    def test_all_errors_reexported_at_top_level(self):
        for name in errors.__all__:
            assert getattr(repro, name) is getattr(errors, name)
