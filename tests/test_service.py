"""The async proving service: queue semantics, worker farm, batching.

Two layers of tests:

- Real-crypto end-to-end (module-scoped fixture, small k): submitted
  jobs produce proofs **byte-identical** to the synchronous
  ``Session.prove`` path under the same pinned blinding seed, and
  ``batch_verify`` accepts the batch while amortizing its MSMs.
- Scheduler-only tests with a stubbed ``ProverNode.answer``: priority
  ordering, load shedding, crash containment, cancellation, timeouts.
  These pin the service's concurrency behavior deterministically
  without paying for proofs.
"""

import threading
import time

import pytest

from repro import PoneglyphDB, ProverConfig, ServiceConfig
from repro.algebra.field import deterministic_rng
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import INT, STRING
from repro.errors import (
    ConfigError,
    JobFailed,
    JobNotFound,
    ServiceClosed,
    ServiceOverloaded,
    StateError,
)
from repro.service import JobState, Priority, ProvingService
from repro.system import ProverNode

SQL_COUNT = "select count(*) as n from t"
SQL_SUM = "select sum(v) as s from t where v < 40"
SEED_COUNT = 0xC0DE
SEED_SUM = 0xBEEF


def make_db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [ColumnDef("a", INT), ColumnDef("grp", STRING), ColumnDef("v", INT)],
            primary_key="a",
        ),
        [
            (1, "x", 10),
            (2, "y", 20),
            (3, "x", 30),
            (4, "y", 40),
            (5, "x", 50),
        ],
    )
    return db


@pytest.fixture(scope="module")
def real_run():
    """One committed session, two synchronous proofs with pinned
    blinding seeds, and the same two queries proved again through a
    2-worker service with the same seeds."""
    config = ProverConfig(
        k=6, limb_bits=4, value_bits=16, key_bits=16, use_cache=False,
        telemetry=True,
    )
    with PoneglyphDB.open(make_db(), config) as session:
        session.commit()
        with deterministic_rng(SEED_COUNT):
            sync_count = session.prove(SQL_COUNT)
        with deterministic_rng(SEED_SUM):
            sync_sum = session.prove(SQL_SUM)
        with session.serve(ServiceConfig(workers=2)) as service:
            job_count = service.submit(SQL_COUNT, rng_seed=SEED_COUNT)
            job_sum = service.submit(SQL_SUM, rng_seed=SEED_SUM)
            async_count = service.wait(job_count, timeout=300)
            async_sum = service.wait(job_sum, timeout=300)
            statuses = {
                job_count: service.status(job_count),
                job_sum: service.status(job_sum),
            }
            stats = service.stats()
        yield {
            "session": session,
            "sync": {"count": sync_count, "sum": sync_sum},
            "async": {"count": async_count, "sum": async_sum},
            "jobs": {"count": job_count, "sum": job_sum},
            "statuses": statuses,
            "stats": stats,
        }


class TestRealService:
    def test_submitted_proofs_byte_identical_to_sync(self, real_run):
        for name in ("count", "sum"):
            sync, job = real_run["sync"][name], real_run["async"][name]
            assert job.wire_bytes() == sync.wire_bytes()
            assert job.result == sync.result

    def test_async_responses_verify(self, real_run):
        session = real_run["session"]
        for name in ("count", "sum"):
            assert session.verify(real_run["async"][name]).accepted

    def test_done_status_shape(self, real_run):
        for status in real_run["statuses"].values():
            assert status.state == JobState.DONE
            assert status.state.finished
            assert status.queue_position is None
            assert status.error is None
            assert status.worker is not None and "worker" in status.worker
            assert status.started_at >= status.submitted_at
            assert status.finished_at >= status.started_at
            assert status.elapsed_seconds > 0

    def test_phase_progress_recorded(self, real_run):
        """The worker mirrors the prover's telemetry spans onto the
        job: a finished job exposes per-phase durations."""
        phases = [s.phases for s in real_run["statuses"].values()]
        assert any(ph for ph in phases)  # telemetry on => phases seen
        for ph in phases:
            for duration in ph.values():
                assert duration >= 0

    def test_stats_counts_completions(self, real_run):
        stats = real_run["stats"]
        assert stats["jobs"].get("DONE") == 2
        assert stats["shed_count"] == 0
        assert sum(w["completed"] for w in stats["workers"].values()) == 2

    def test_batch_verify_accepts_and_amortizes(self, real_run):
        session = real_run["session"]
        responses = [real_run["async"]["count"], real_run["async"]["sum"]]
        report = session.batch_verify(responses)
        assert report.accepted, report.reason
        assert report.proofs == 2
        assert all(rep.accepted for rep in report.reports)
        # The per-proof base-folding MSMs were actually deferred into
        # the shared accumulator rather than checked eagerly.
        assert report.deferred_openings >= 2
        assert report.finalize_seconds > 0
        assert report.require() is report

    def test_batch_verify_rejects_forged_result(self, real_run):
        import copy

        session = real_run["session"]
        good = real_run["async"]["count"]
        forged = copy.deepcopy(real_run["async"]["sum"])
        forged.result_encoded[0][0] += 1
        report = session.batch_verify([good, forged])
        assert not report.accepted
        assert report.reports[0].accepted
        assert not report.reports[1].accepted
        with pytest.raises(Exception, match="rejected indices \\[1\\]"):
            report.require()


class TestRollup:
    """``submit_aggregate`` fans a batch out to the prover farm;
    ``rollup`` folds finished jobs into one transportable ``AggProof``
    epoch, verified with a single accumulator finalize."""

    @pytest.fixture(scope="class")
    def rollup_run(self, real_run):
        session = real_run["session"]
        with session.serve(ServiceConfig(workers=2)) as service:
            # rng_seed such that job 1's derived seed (rng_seed + 1)
            # matches the synchronous SUM proof -- pins the per-job
            # seed derivation, not just the fan-out.
            jobs = service.submit_aggregate(
                [SQL_COUNT, SQL_SUM], rng_seed=SEED_SUM - 1
            )
            agg = service.rollup(jobs, timeout=300)
            report = service.verify_aggregate(agg.to_bytes())
            yield service, jobs, agg, report

    def test_rollup_folds_all_jobs_in_order(self, rollup_run):
        _, jobs, agg, _ = rollup_run
        assert len(jobs) == 2
        assert agg.proofs == 2
        assert [entry.sql for entry in agg.entries] == [SQL_COUNT, SQL_SUM]

    def test_rollup_verifies_with_one_finalize(self, rollup_run):
        *_, report = rollup_run
        assert report.accepted, report.reason
        assert report.deferred_openings >= 2

    def test_derived_seeds_reproduce_sync_proofs(self, rollup_run, real_run):
        _, _, agg, _ = rollup_run
        sync_sum = real_run["sync"]["sum"]
        assert agg.entries[1].proof_bytes == sync_sum.wire_bytes()

    def test_epoch_rollup_sweeps_only_new_jobs(self, rollup_run):
        service, *_ = rollup_run
        # Everything proved so far is already folded into epoch 1.
        with pytest.raises(StateError, match="no completed jobs"):
            service.rollup()
        job = service.submit(SQL_COUNT, rng_seed=SEED_COUNT)
        service.wait(job, timeout=300)
        epoch2 = service.rollup()
        assert epoch2.proofs == 1
        assert service.verify_aggregate(epoch2.to_bytes()).accepted
        with pytest.raises(StateError, match="no completed jobs"):
            service.rollup()

    def test_empty_submissions_rejected(self, rollup_run):
        service, *_ = rollup_run
        with pytest.raises(ValueError, match="empty aggregate batch"):
            service.submit_aggregate([])
        with pytest.raises(StateError, match="empty job list"):
            service.rollup([])


# -- scheduler behavior with a stubbed prover ---------------------------------


@pytest.fixture()
def stub_session(monkeypatch):
    """A committed session whose provers return fake responses
    instantly, with an optional gate to hold the worker mid-job."""
    gate = threading.Event()
    order = []

    def fake_answer(self, sql):
        if sql.startswith("block"):
            assert gate.wait(timeout=30), "test gate never released"
        if sql.startswith("crash"):
            raise RuntimeError("injected prover crash")
        order.append(sql)
        return f"response:{sql}"

    monkeypatch.setattr(ProverNode, "answer", fake_answer)
    config = ProverConfig(
        k=6, limb_bits=4, value_bits=16, key_bits=16, use_cache=False
    )
    with PoneglyphDB.open(make_db(), config) as session:
        session.commit()
        yield session, gate, order


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestScheduling:
    def test_status_transitions(self, stub_session):
        session, gate, _ = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            job = service.submit("block-1")
            assert wait_for(
                lambda: service.status(job).state == JobState.RUNNING
            )
            with pytest.raises(StateError):
                service.result(job)
            gate.set()
            service.wait(job, timeout=10)
            assert service.status(job).state == JobState.DONE

    def test_priority_ordering(self, stub_session):
        session, gate, order = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            blocker = service.submit("block-0")
            assert wait_for(
                lambda: service.status(blocker).state == JobState.RUNNING
            )
            low = service.submit("low", priority=Priority.LOW)
            normal = service.submit("normal", priority=Priority.NORMAL)
            high = service.submit("high", priority=Priority.HIGH)
            # Queued in submission order, ranked in dispatch order.
            assert service.status(high).queue_position == 0
            assert service.status(normal).queue_position == 1
            assert service.status(low).queue_position == 2
            gate.set()
            for job in (low, normal, high):
                service.wait(job, timeout=10)
        assert order == ["block-0", "high", "normal", "low"]

    def test_load_shedding_with_priority_reserve(self, stub_session):
        session, gate, _ = stub_session
        config = ServiceConfig(
            workers=1, max_queue_depth=2, high_priority_reserve=1
        )
        with session.serve(config) as service:
            blocker = service.submit("block-0")
            assert wait_for(
                lambda: service.status(blocker).state == JobState.RUNNING
            )
            service.submit("q1")  # depth 0 -> 1, NORMAL bound is 1
            with pytest.raises(ServiceOverloaded) as exc_info:
                service.submit("q2")
            assert exc_info.value.queue_depth == 1
            # HIGH may use the reserved headroom...
            service.submit("q3", priority=Priority.HIGH)
            # ...but respects the hard cap.
            with pytest.raises(ServiceOverloaded):
                service.submit("q4", priority=Priority.HIGH)
            assert service.stats()["shed_count"] == 2
            # A shed job leaves no residue.
            assert service.stats()["jobs"].get("QUEUED", 0) == 2
            gate.set()

    def test_worker_crash_marks_failed_not_hang(self, stub_session):
        session, _, _ = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            bad = service.submit("crash-1")
            with pytest.raises(JobFailed, match="injected prover crash"):
                service.wait(bad, timeout=10)
            assert service.status(bad).state == JobState.FAILED
            assert "RuntimeError" in service.status(bad).error
            # The worker survives and serves the next job.
            good = service.submit("after-crash")
            assert service.wait(good, timeout=10) == "response:after-crash"
            assert service.stats()["workers"]["prover-worker-0"]["failed"] == 1

    def test_malformed_sql_fails_job(self, real_run):
        # With the real prover, a parse error surfaces as FAILED.
        session = real_run["session"]
        with session.serve(ServiceConfig(workers=1)) as service:
            job = service.submit("definitely not sql")
            with pytest.raises(JobFailed):
                service.wait(job, timeout=30)
            assert service.status(job).state == JobState.FAILED

    def test_wait_timeout(self, stub_session):
        session, gate, _ = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            job = service.submit("block-1")
            with pytest.raises(TimeoutError):
                service.wait(job, timeout=0.05)
            gate.set()
            service.wait(job, timeout=10)

    def test_close_cancels_queued_jobs(self, stub_session):
        session, gate, _ = stub_session
        service = session.serve(ServiceConfig(workers=1))
        blocker = service.submit("block-0")
        assert wait_for(
            lambda: service.status(blocker).state == JobState.RUNNING
        )
        queued = service.submit("never-runs")
        # close() drains the queue synchronously before joining the
        # workers; release the gate slightly later so the blocked
        # worker cannot grab "never-runs" first, then exits cleanly.
        threading.Timer(0.3, gate.set).start()
        service.close()
        assert service.status(queued).state == JobState.CANCELLED
        with pytest.raises(JobFailed, match="cancelled"):
            service.result(queued)
        with pytest.raises(ServiceClosed):
            service.submit("too-late")
        assert not any(worker.is_alive() for worker in service.workers)

    def test_unknown_job_id(self, stub_session):
        session, _, _ = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            with pytest.raises(JobNotFound):
                service.status("job-999999-deadbeef")

    def test_concurrent_submitters(self, stub_session):
        session, _, _ = stub_session
        results = {}
        with session.serve(ServiceConfig(workers=2)) as service:

            def client(i):
                job = service.submit(f"q{i}")
                results[i] = service.wait(job, timeout=10)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert results == {i: f"response:q{i}" for i in range(8)}


class TestServiceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": -1},
            {"max_queue_depth": 0},
            {"high_priority_reserve": -1},
            {"high_priority_reserve": 64, "max_queue_depth": 64},
            {"poll_interval": 0},
            {"shutdown_timeout": 0},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            ServiceConfig(**kwargs)

    def test_with_options(self):
        config = ServiceConfig(workers=2)
        assert config.with_options(workers=4).workers == 4
        assert config.workers == 2
        with pytest.raises(ConfigError):
            config.with_options(workers=0)


class TestDeterministicRng:
    def test_same_seed_same_draws(self, field):
        with deterministic_rng(7):
            first = [field.rand() for _ in range(4)]
        with deterministic_rng(7):
            second = [field.rand() for _ in range(4)]
        assert first == second

    def test_thread_local_isolation(self, field):
        """A pinned RNG on one thread must not leak into another."""
        draws = {}

        def other_thread():
            with deterministic_rng(7):
                draws["other"] = [field.rand() for _ in range(4)]

        with deterministic_rng(7):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
            draws["main"] = [field.rand() for _ in range(4)]
        assert draws["main"] == draws["other"]

    def test_no_seed_is_nondeterministic(self, field):
        assert field.rand() != field.rand()  # astronomically unlikely
