"""The async proving service: queue semantics, worker farm, batching.

Two layers of tests:

- Real-crypto end-to-end (module-scoped fixture, small k): submitted
  jobs produce proofs **byte-identical** to the synchronous
  ``Session.prove`` path under the same pinned blinding seed, and
  ``batch_verify`` accepts the batch while amortizing its MSMs.
- Scheduler-only tests with a stubbed ``ProverNode.answer``: priority
  ordering, load shedding, crash containment, cancellation, timeouts.
  These pin the service's concurrency behavior deterministically
  without paying for proofs.
"""

import threading
import time

import pytest

from repro import PoneglyphDB, ProverConfig, ServiceConfig
from repro.algebra.field import deterministic_rng
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import INT, STRING
from repro.errors import (
    ConfigError,
    JobFailed,
    JobNotFound,
    ServiceClosed,
    ServiceOverloaded,
    StateError,
)
from repro.service import JobState, Priority, ProvingService
from repro.system import ProverNode

SQL_COUNT = "select count(*) as n from t"
SQL_SUM = "select sum(v) as s from t where v < 40"
SEED_COUNT = 0xC0DE
SEED_SUM = 0xBEEF


def make_db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [ColumnDef("a", INT), ColumnDef("grp", STRING), ColumnDef("v", INT)],
            primary_key="a",
        ),
        [
            (1, "x", 10),
            (2, "y", 20),
            (3, "x", 30),
            (4, "y", 40),
            (5, "x", 50),
        ],
    )
    return db


@pytest.fixture(scope="module")
def real_run():
    """One committed session, two synchronous proofs with pinned
    blinding seeds, and the same two queries proved again through a
    2-worker service with the same seeds."""
    config = ProverConfig(
        k=6, limb_bits=4, value_bits=16, key_bits=16, use_cache=False,
        telemetry=True,
    )
    with PoneglyphDB.open(make_db(), config) as session:
        session.commit()
        with deterministic_rng(SEED_COUNT):
            sync_count = session.prove(SQL_COUNT)
        with deterministic_rng(SEED_SUM):
            sync_sum = session.prove(SQL_SUM)
        with session.serve(ServiceConfig(workers=2)) as service:
            job_count = service.submit(SQL_COUNT, rng_seed=SEED_COUNT)
            job_sum = service.submit(SQL_SUM, rng_seed=SEED_SUM)
            async_count = service.wait(job_count, timeout=300)
            async_sum = service.wait(job_sum, timeout=300)
            statuses = {
                job_count: service.status(job_count),
                job_sum: service.status(job_sum),
            }
            stats = service.stats()
        yield {
            "session": session,
            "sync": {"count": sync_count, "sum": sync_sum},
            "async": {"count": async_count, "sum": async_sum},
            "jobs": {"count": job_count, "sum": job_sum},
            "statuses": statuses,
            "stats": stats,
        }


class TestRealService:
    def test_submitted_proofs_byte_identical_to_sync(self, real_run):
        for name in ("count", "sum"):
            sync, job = real_run["sync"][name], real_run["async"][name]
            assert job.wire_bytes() == sync.wire_bytes()
            assert job.result == sync.result

    def test_async_responses_verify(self, real_run):
        session = real_run["session"]
        for name in ("count", "sum"):
            assert session.verify(real_run["async"][name]).accepted

    def test_done_status_shape(self, real_run):
        for status in real_run["statuses"].values():
            assert status.state == JobState.DONE
            assert status.state.finished
            assert status.queue_position is None
            assert status.error is None
            assert status.worker is not None and "worker" in status.worker
            assert status.started_at >= status.submitted_at
            assert status.finished_at >= status.started_at
            assert status.elapsed_seconds > 0

    def test_phase_progress_recorded(self, real_run):
        """The worker mirrors the prover's telemetry spans onto the
        job: a finished job exposes per-phase durations."""
        phases = [s.phases for s in real_run["statuses"].values()]
        assert any(ph for ph in phases)  # telemetry on => phases seen
        for ph in phases:
            for duration in ph.values():
                assert duration >= 0

    def test_stats_counts_completions(self, real_run):
        stats = real_run["stats"]
        assert stats["jobs"].get("DONE") == 2
        assert stats["shed_count"] == 0
        assert sum(w["completed"] for w in stats["workers"].values()) == 2

    def test_batch_verify_accepts_and_amortizes(self, real_run):
        session = real_run["session"]
        responses = [real_run["async"]["count"], real_run["async"]["sum"]]
        report = session.batch_verify(responses)
        assert report.accepted, report.reason
        assert report.proofs == 2
        assert all(rep.accepted for rep in report.reports)
        # The per-proof base-folding MSMs were actually deferred into
        # the shared accumulator rather than checked eagerly.
        assert report.deferred_openings >= 2
        assert report.finalize_seconds > 0
        assert report.require() is report

    def test_batch_verify_rejects_forged_result(self, real_run):
        import copy

        session = real_run["session"]
        good = real_run["async"]["count"]
        forged = copy.deepcopy(real_run["async"]["sum"])
        forged.result_encoded[0][0] += 1
        report = session.batch_verify([good, forged])
        assert not report.accepted
        assert report.reports[0].accepted
        assert not report.reports[1].accepted
        with pytest.raises(Exception, match="rejected indices \\[1\\]"):
            report.require()


class TestRollup:
    """``submit_aggregate`` fans a batch out to the prover farm;
    ``rollup`` folds finished jobs into one transportable ``AggProof``
    epoch, verified with a single accumulator finalize."""

    @pytest.fixture(scope="class")
    def rollup_run(self, real_run):
        session = real_run["session"]
        with session.serve(ServiceConfig(workers=2)) as service:
            # rng_seed such that job 1's derived seed (rng_seed + 1)
            # matches the synchronous SUM proof -- pins the per-job
            # seed derivation, not just the fan-out.
            jobs = service.submit_aggregate(
                [SQL_COUNT, SQL_SUM], rng_seed=SEED_SUM - 1
            )
            agg = service.rollup(jobs, timeout=300)
            report = service.verify_aggregate(agg.to_bytes())
            yield service, jobs, agg, report

    def test_rollup_folds_all_jobs_in_order(self, rollup_run):
        _, jobs, agg, _ = rollup_run
        assert len(jobs) == 2
        assert agg.proofs == 2
        assert [entry.sql for entry in agg.entries] == [SQL_COUNT, SQL_SUM]

    def test_rollup_verifies_with_one_finalize(self, rollup_run):
        *_, report = rollup_run
        assert report.accepted, report.reason
        assert report.deferred_openings >= 2

    def test_derived_seeds_reproduce_sync_proofs(self, rollup_run, real_run):
        _, _, agg, _ = rollup_run
        sync_sum = real_run["sync"]["sum"]
        assert agg.entries[1].proof_bytes == sync_sum.wire_bytes()

    def test_epoch_rollup_sweeps_only_new_jobs(self, rollup_run):
        service, *_ = rollup_run
        # Everything proved so far is already folded into epoch 1.
        with pytest.raises(StateError, match="no completed jobs"):
            service.rollup()
        job = service.submit(SQL_COUNT, rng_seed=SEED_COUNT)
        service.wait(job, timeout=300)
        epoch2 = service.rollup()
        assert epoch2.proofs == 1
        assert service.verify_aggregate(epoch2.to_bytes()).accepted
        with pytest.raises(StateError, match="no completed jobs"):
            service.rollup()

    def test_empty_submissions_rejected(self, rollup_run):
        service, *_ = rollup_run
        with pytest.raises(ValueError, match="empty aggregate batch"):
            service.submit_aggregate([])
        with pytest.raises(StateError, match="empty job list"):
            service.rollup([])


# -- scheduler behavior with a stubbed prover ---------------------------------


@pytest.fixture()
def stub_session(monkeypatch):
    """A committed session whose provers return fake responses
    instantly, with an optional gate to hold the worker mid-job."""
    gate = threading.Event()
    order = []

    def fake_answer(self, sql):
        if sql.startswith("block"):
            assert gate.wait(timeout=30), "test gate never released"
        if sql.startswith("crash"):
            raise RuntimeError("injected prover crash")
        order.append(sql)
        return f"response:{sql}"

    monkeypatch.setattr(ProverNode, "answer", fake_answer)
    config = ProverConfig(
        k=6, limb_bits=4, value_bits=16, key_bits=16, use_cache=False
    )
    with PoneglyphDB.open(make_db(), config) as session:
        session.commit()
        yield session, gate, order


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestScheduling:
    def test_status_transitions(self, stub_session):
        session, gate, _ = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            job = service.submit("block-1")
            assert wait_for(
                lambda: service.status(job).state == JobState.RUNNING
            )
            with pytest.raises(StateError):
                service.result(job)
            gate.set()
            service.wait(job, timeout=10)
            assert service.status(job).state == JobState.DONE

    def test_priority_ordering(self, stub_session):
        session, gate, order = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            blocker = service.submit("block-0")
            assert wait_for(
                lambda: service.status(blocker).state == JobState.RUNNING
            )
            low = service.submit("low", priority=Priority.LOW)
            normal = service.submit("normal", priority=Priority.NORMAL)
            high = service.submit("high", priority=Priority.HIGH)
            # Queued in submission order, ranked in dispatch order.
            assert service.status(high).queue_position == 0
            assert service.status(normal).queue_position == 1
            assert service.status(low).queue_position == 2
            gate.set()
            for job in (low, normal, high):
                service.wait(job, timeout=10)
        assert order == ["block-0", "high", "normal", "low"]

    def test_load_shedding_with_priority_reserve(self, stub_session):
        session, gate, _ = stub_session
        config = ServiceConfig(
            workers=1, max_queue_depth=2, high_priority_reserve=1
        )
        with session.serve(config) as service:
            blocker = service.submit("block-0")
            assert wait_for(
                lambda: service.status(blocker).state == JobState.RUNNING
            )
            service.submit("q1")  # depth 0 -> 1, NORMAL bound is 1
            with pytest.raises(ServiceOverloaded) as exc_info:
                service.submit("q2")
            assert exc_info.value.queue_depth == 1
            # HIGH may use the reserved headroom...
            service.submit("q3", priority=Priority.HIGH)
            # ...but respects the hard cap.
            with pytest.raises(ServiceOverloaded):
                service.submit("q4", priority=Priority.HIGH)
            assert service.stats()["shed_count"] == 2
            # A shed job leaves no residue.
            assert service.stats()["jobs"].get("QUEUED", 0) == 2
            gate.set()

    def test_worker_crash_marks_failed_not_hang(self, stub_session):
        session, _, _ = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            bad = service.submit("crash-1")
            with pytest.raises(JobFailed, match="injected prover crash"):
                service.wait(bad, timeout=10)
            assert service.status(bad).state == JobState.FAILED
            assert "RuntimeError" in service.status(bad).error
            # The worker survives and serves the next job.
            good = service.submit("after-crash")
            assert service.wait(good, timeout=10) == "response:after-crash"
            assert service.stats()["workers"]["prover-worker-0"]["failed"] == 1

    def test_malformed_sql_fails_job(self, real_run):
        # With the real prover, a parse error surfaces as FAILED.
        session = real_run["session"]
        with session.serve(ServiceConfig(workers=1)) as service:
            job = service.submit("definitely not sql")
            with pytest.raises(JobFailed):
                service.wait(job, timeout=30)
            assert service.status(job).state == JobState.FAILED

    def test_wait_timeout(self, stub_session):
        session, gate, _ = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            job = service.submit("block-1")
            with pytest.raises(TimeoutError):
                service.wait(job, timeout=0.05)
            gate.set()
            service.wait(job, timeout=10)

    def test_close_cancels_queued_jobs(self, stub_session):
        session, gate, _ = stub_session
        service = session.serve(ServiceConfig(workers=1))
        blocker = service.submit("block-0")
        assert wait_for(
            lambda: service.status(blocker).state == JobState.RUNNING
        )
        queued = service.submit("never-runs")
        # close() drains the queue synchronously before joining the
        # workers; release the gate slightly later so the blocked
        # worker cannot grab "never-runs" first, then exits cleanly.
        threading.Timer(0.3, gate.set).start()
        service.close()
        assert service.status(queued).state == JobState.CANCELLED
        with pytest.raises(JobFailed, match="cancelled"):
            service.result(queued)
        with pytest.raises(ServiceClosed):
            service.submit("too-late")
        assert not any(worker.is_alive() for worker in service.workers)

    def test_unknown_job_id(self, stub_session):
        session, _, _ = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            with pytest.raises(JobNotFound):
                service.status("job-999999-deadbeef")

    def test_concurrent_submitters(self, stub_session):
        session, _, _ = stub_session
        results = {}
        with session.serve(ServiceConfig(workers=2)) as service:

            def client(i):
                job = service.submit(f"q{i}")
                results[i] = service.wait(job, timeout=10)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert results == {i: f"response:q{i}" for i in range(8)}


class TestCancellation:
    def test_cancel_queued_job(self, stub_session):
        session, gate, order = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            blocker = service.submit("block-0")
            assert wait_for(
                lambda: service.status(blocker).state == JobState.RUNNING
            )
            doomed = service.submit("never-runs")
            keeper = service.submit("still-runs")
            service.cancel(doomed)
            assert service.status(doomed).state == JobState.CANCELLED
            with pytest.raises(JobFailed, match="cancelled by client"):
                service.result(doomed)
            # wait() on a cancelled job returns immediately (the done
            # event fired), raising the terminal failure.
            with pytest.raises(JobFailed, match="cancelled"):
                service.wait(doomed, timeout=5)
            gate.set()
            assert service.wait(keeper, timeout=10) == "response:still-runs"
        assert "never-runs" not in order

    def test_cancel_running_or_finished_rejected(self, stub_session):
        session, gate, _ = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            job = service.submit("block-1")
            assert wait_for(
                lambda: service.status(job).state == JobState.RUNNING
            )
            with pytest.raises(StateError, match="only queued"):
                service.cancel(job)
            gate.set()
            service.wait(job, timeout=10)
            with pytest.raises(StateError):
                service.cancel(job)
            with pytest.raises(JobNotFound):
                service.cancel("job-999999-deadbeef")


class TestJobTimeout:
    def test_wait_raises_typed_timeout(self, stub_session):
        from repro.errors import JobTimeout, ServiceError

        session, gate, _ = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            job = service.submit("block-1")
            with pytest.raises(JobTimeout) as excinfo:
                service.wait(job, timeout=0.05)
            # Typed for service callers, still a TimeoutError for
            # pre-existing except clauses, and it names the job.
            assert isinstance(excinfo.value, TimeoutError)
            assert isinstance(excinfo.value, ServiceError)
            assert excinfo.value.job_id == job
            assert str(job) in str(excinfo.value)
            gate.set()
            service.wait(job, timeout=10)


class TestTenantQuotas:
    def test_quota_bounds_active_jobs_per_tenant(self, stub_session):
        session, gate, _ = stub_session
        config = ServiceConfig(
            workers=1,
            tenant_quotas={"acme": 2},
            default_tenant_quota=1,
        )
        with session.serve(config) as service:
            blocker = service.submit("block-0", tenant="acme")
            assert wait_for(
                lambda: service.status(blocker).state == JobState.RUNNING
            )
            second = service.submit("q2", tenant="acme")
            with pytest.raises(ServiceOverloaded) as excinfo:
                service.submit("q3", tenant="acme")
            assert excinfo.value.tenant == "acme"
            assert excinfo.value.quota == 2
            # Unknown tenants get the default quota...
            service.submit("q4", tenant="other")
            with pytest.raises(ServiceOverloaded):
                service.submit("q5", tenant="other")
            # ...and untenanted jobs are never quota-checked.
            service.submit("q6")
            gate.set()
            service.wait(second, timeout=10)
            # Finished jobs release quota capacity.
            service.wait(service.submit("q7", tenant="acme"), timeout=10)

    def test_rejection_leaves_no_residue(self, stub_session):
        session, gate, _ = stub_session
        config = ServiceConfig(workers=1, tenant_quotas={"t": 1})
        with session.serve(config) as service:
            blocker = service.submit("block-0", tenant="t")
            assert wait_for(
                lambda: service.status(blocker).state == JobState.RUNNING
            )
            with pytest.raises(ServiceOverloaded):
                service.submit("q", tenant="t")
            stats = service.stats()
            assert stats["tenants"] == {"t": 1}
            assert stats["jobs"].get("QUEUED", 0) == 0
            gate.set()


class TestRetriesAndSupervision:
    def test_killed_worker_job_retried_and_farm_respawned(self, stub_session):
        from repro.service.chaos import ChaosInjector

        session, _, _ = stub_session
        chaos = ChaosInjector(seed=5, kills=1)
        config = ServiceConfig(
            workers=1,
            max_retries=2,
            retry_backoff_seconds=0.01,
            retry_backoff_max=0.05,
            supervisor_interval=0.02,
        )
        with session.serve(config, chaos=chaos) as service:
            job = service.submit("survives-a-kill")
            assert service.wait(job, timeout=30) == "response:survives-a-kill"
            status = service.status(job)
            assert status.attempts == 1  # one kill, one retry
            assert service.workers_restarted >= 1
            health = service.health()
            assert health["workers_restarted"] >= 1
            assert all(w["alive"] for w in health["workers"].values())
            assert len(health["workers"]) == 1  # still exactly one slot

    def test_retry_budget_exhaustion_fails_job(self, stub_session):
        from repro.service.chaos import ChaosInjector
        from repro.service.scheduler import WorkerKilled

        session, _, _ = stub_session

        class AlwaysKill(ChaosInjector):
            def on_prove(self, job, worker):
                raise WorkerKilled("chaos: every attempt dies")

        config = ServiceConfig(
            workers=1,
            max_retries=1,
            retry_backoff_seconds=0.01,
            supervisor_interval=0.02,
        )
        with session.serve(config, chaos=AlwaysKill(seed=0)) as service:
            job = service.submit("doomed")
            with pytest.raises(JobFailed, match="died mid-job"):
                service.wait(job, timeout=30)
            assert service.status(job).attempts == 1  # budget spent

    def test_deterministic_failure_never_retried(self, real_run):
        session = real_run["session"]
        config = ServiceConfig(
            workers=1, max_retries=3, retry_backoff_seconds=0.01,
            supervisor_interval=0.02,
        )
        with session.serve(config) as service:
            job = service.submit("definitely not sql")
            with pytest.raises(JobFailed):
                service.wait(job, timeout=30)
            # A parse error is a property of the input: retrying would
            # burn three proofs to fail identically, so attempts stays 0.
            assert service.status(job).attempts == 0


class TestDeadlines:
    def test_deadline_expired_while_queued_fails_at_dequeue(
        self, stub_session
    ):
        session, gate, order = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            blocker = service.submit("block-0")
            assert wait_for(
                lambda: service.status(blocker).state == JobState.RUNNING
            )
            doomed = service.submit("expired", deadline_seconds=0.05)
            time.sleep(0.15)
            gate.set()
            with pytest.raises(JobFailed, match="passed while queued"):
                service.wait(doomed, timeout=10)
        assert "expired" not in order

    def test_deadline_aborts_mid_prove(self, real_run):
        """The cooperative abort path: the span observer notices the
        blown budget partway through a real prove and unwinds it."""
        session = real_run["session"]
        with session.serve(ServiceConfig(workers=1)) as service:
            job = service.submit(
                SQL_COUNT, rng_seed=SEED_COUNT, deadline_seconds=0.3
            )
            with pytest.raises(JobFailed, match="aborted mid-prove"):
                service.wait(job, timeout=60)
            # The worker survives the abort and serves the next job.
            ok = service.submit(SQL_COUNT, rng_seed=SEED_COUNT)
            service.wait(ok, timeout=60)


class TestQueueRaces:
    """Direct JobQueue coverage: exact shed boundaries and the
    close/pop races the service's shutdown path depends on."""

    def _job(self, sql="q", priority=Priority.NORMAL):
        from repro.service.jobs import Job

        return Job(sql, priority=priority)

    def test_exact_shed_boundary(self):
        from repro.service.queue import JobQueue

        q = JobQueue(max_depth=4, high_priority_reserve=2)
        assert q.depth_limit(Priority.NORMAL) == 2
        assert q.depth_limit(Priority.HIGH) == 4
        q.push(self._job())
        q.push(self._job())  # depth 2 == NORMAL bound: next one sheds
        with pytest.raises(ServiceOverloaded):
            q.push(self._job())
        with pytest.raises(ServiceOverloaded):
            q.push(self._job(priority=Priority.LOW))
        q.push(self._job(priority=Priority.HIGH))
        q.push(self._job(priority=Priority.HIGH))  # depth 4 == cap
        with pytest.raises(ServiceOverloaded):
            q.push(self._job(priority=Priority.HIGH))
        assert q.shed_count == 3

    def test_force_push_bypasses_depth_but_not_close(self):
        from repro.service.queue import JobQueue

        q = JobQueue(max_depth=1)
        q.push(self._job())
        with pytest.raises(ServiceOverloaded):
            q.push(self._job())
        q.push(self._job(), force=True)  # recovery/retry re-admission
        assert len(q) == 2
        q.close()
        with pytest.raises(ServiceClosed):
            q.push(self._job(), force=True)

    def test_remove_withdraws_exactly_once(self):
        from repro.service.queue import JobQueue

        q = JobQueue(max_depth=8)
        jobs = [self._job(f"q{i}") for i in range(4)]
        for job in jobs:
            q.push(job)
        assert q.remove(jobs[1])
        assert not q.remove(jobs[1])  # already gone
        popped = [q.pop(timeout=0.1) for _ in range(3)]
        assert jobs[1] not in popped
        assert len(q) == 0

    def test_blocked_pop_wakes_on_close(self):
        from repro.service.queue import JobQueue

        q = JobQueue(max_depth=4)
        result = {}

        def popper():
            result["job"] = q.pop(timeout=10)

        t = threading.Thread(target=popper)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=2)
        assert not t.is_alive(), "pop() stayed blocked across close()"
        assert result["job"] is None

    def test_close_pop_race_never_loses_or_duplicates(self):
        """Hammer pop() from several threads while close() drains: every
        job must surface exactly once -- either popped or drained."""
        from repro.service.queue import JobQueue

        for trial in range(20):
            q = JobQueue(max_depth=64)
            jobs = [self._job(f"q{i}") for i in range(8)]
            for job in jobs:
                q.push(job)
            popped, lock = [], threading.Lock()

            def drainer():
                while True:
                    job = q.pop(timeout=0.05)
                    if job is None:
                        return
                    with lock:
                        popped.append(job)

            threads = [threading.Thread(target=drainer) for _ in range(4)]
            for t in threads:
                t.start()
            drained = q.close()
            for t in threads:
                t.join(timeout=5)
            seen = popped + drained
            assert len(seen) == 8, f"trial {trial}: {len(seen)} of 8 jobs"
            assert len({id(job) for job in seen}) == 8


class TestServiceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": -1},
            {"max_queue_depth": 0},
            {"high_priority_reserve": -1},
            {"high_priority_reserve": 64, "max_queue_depth": 64},
            {"poll_interval": 0},
            {"shutdown_timeout": 0},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            ServiceConfig(**kwargs)

    def test_with_options(self):
        config = ServiceConfig(workers=2)
        assert config.with_options(workers=4).workers == 4
        assert config.workers == 2
        with pytest.raises(ConfigError):
            config.with_options(workers=0)


class TestDeterministicRng:
    def test_same_seed_same_draws(self, field):
        with deterministic_rng(7):
            first = [field.rand() for _ in range(4)]
        with deterministic_rng(7):
            second = [field.rand() for _ in range(4)]
        assert first == second

    def test_thread_local_isolation(self, field):
        """A pinned RNG on one thread must not leak into another."""
        draws = {}

        def other_thread():
            with deterministic_rng(7):
                draws["other"] = [field.rand() for _ in range(4)]

        with deterministic_rng(7):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
            draws["main"] = [field.rand() for _ in range(4)]
        assert draws["main"] == draws["other"]

    def test_no_seed_is_nondeterministic(self, field):
        assert field.rand() != field.rand()  # astronomically unlikely
