"""Plan-to-circuit compiler: every operator shape produces a satisfied
circuit whose result matches the plaintext executor, and tampered
witnesses violate constraints."""

import pytest

from repro.algebra import SCALAR_FIELD as F
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import DATE, DECIMAL, INT, STRING
from repro.plonkish import Assignment, MockProver
from repro.sql.compiler import CompileError, QueryCompiler
from repro.sql.executor import Executor
from repro.sql.parser import parse
from repro.sql.planner import Planner

K = 9


@pytest.fixture(scope="module")
def db():
    db = Database()
    db.create_table(
        TableSchema(
            "customers",
            [
                ColumnDef("c_id", INT),
                ColumnDef("c_name", STRING),
                ColumnDef("c_age", INT),
            ],
            primary_key="c_id",
        ),
        [(1, "alice", 34), (2, "bob", 28), (3, "carol", 41), (4, "dave", 30)],
    )
    db.create_table(
        TableSchema(
            "orders",
            [
                ColumnDef("o_id", INT),
                ColumnDef("o_cid", INT),
                ColumnDef("o_amount", DECIMAL),
                ColumnDef("o_date", DATE),
            ],
            primary_key="o_id",
            foreign_keys={"o_cid": ("customers", "c_id")},
        ),
        [
            (1, 1, 120.50, "1995-01-10"),
            (2, 1, 30.25, "1995-02-11"),
            (3, 2, 99.99, "1995-03-12"),
            (4, 3, 12.00, "1996-01-05"),
            (5, 7, 55.00, "1996-06-06"),
        ],
    )
    return db


def compile_and_check(db, sql, k=K):
    plan = Planner(db).plan(parse(sql))
    expected = Executor(db).execute(plan)
    compiled = QueryCompiler(
        db, k, limb_bits=4, value_bits=32, key_bits=40
    ).compile(plan)
    asg = Assignment(compiled.cs, F, k)
    result = compiled.assign_witness(asg, db)
    MockProver(compiled.cs, asg, F).assert_satisfied()
    exp_rows = [list(r.values()) for r in expected.rows()]
    if compiled.limit is not None:
        exp_rows = exp_rows[: compiled.limit]
    return result, exp_rows, compiled, asg


QUERIES = {
    "projection": "select c_name, c_age from customers",
    "filter_lt": "select c_id from customers where c_age < 31",
    "filter_string": "select c_id from customers where c_name = 'carol'",
    "filter_or": (
        "select c_id from customers where c_age < 29 or c_age > 40"
    ),
    "filter_not": "select c_id from customers where not c_age >= 31",
    "filter_between": (
        "select o_id from orders where o_amount between 30 and 100"
    ),
    "filter_in": "select c_id from customers where c_age in (28, 41)",
    "order_by": "select c_id, c_age from customers order by c_age desc",
    "limit": "select c_id, c_age from customers order by c_age limit 2",
    "group_sum": (
        "select o_cid, sum(o_amount) as s from orders group by o_cid "
        "order by o_cid"
    ),
    "group_avg_count": (
        "select o_cid, avg(o_amount) as a, count(*) as n from orders "
        "group by o_cid order by o_cid"
    ),
    "global_aggregate": "select sum(o_amount) as s, count(*) as n from orders",
    "join": (
        "select c_name, o_amount from orders, customers where o_cid = c_id"
    ),
    "join_filter_agg": (
        "select c_name, sum(o_amount) as s from orders, customers "
        "where o_cid = c_id and o_amount > 20 group by c_name "
        "order by s desc"
    ),
    "derive_year": (
        "select extract(year from o_date) as y, count(*) as n from orders "
        "group by y order by y"
    ),
    "case_in_sum": (
        "select sum(case when o_cid = 1 then o_amount else 0 end) as s "
        "from orders"
    ),
    "having": (
        "select o_cid, count(*) as n from orders group by o_cid "
        "having count(*) > 1"
    ),
    "agg_division": (
        "select sum(o_amount) / count(*) as ratio from orders group by o_cid "
        "order by ratio desc limit 1"
    ),
}


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_operator_shapes(db, name):
    result, expected, _, _ = compile_and_check(db, QUERIES[name])
    if "order" in QUERIES[name]:
        assert result == expected, name
    else:
        assert sorted(result) == sorted(expected), name


class TestCompilerStructure:
    def test_scan_links_cover_used_columns(self, db):
        _, _, compiled, _ = compile_and_check(
            db, "select c_id from customers where c_age < 31"
        )
        linked = {(l.table, l.column) for l in compiled.scan_links}
        assert ("customers", "c_age") in linked
        assert ("customers", "c_id") in linked

    def test_public_assignment_matches_witness_fixed(self, db):
        """The verifier's fixed-only assignment must reproduce the
        prover's fixed columns exactly (otherwise keygen diverges)."""
        sql = QUERIES["join_filter_agg"]
        plan = Planner(db).plan(parse(sql))
        compiled = QueryCompiler(
            db, K, limb_bits=4, value_bits=32, key_bits=40
        ).compile(plan)
        asg_full = Assignment(compiled.cs, F, K)
        result = compiled.assign_witness(asg_full, db)

        plan2 = Planner(db).plan(parse(sql))
        compiled2 = QueryCompiler(
            db, K, limb_bits=4, value_bits=32, key_bits=40
        ).compile(plan2)
        asg_public = Assignment(compiled2.cs, F, K)
        compiled2.assign_public(asg_public, len(result))
        assert asg_full.fixed == asg_public.fixed

    def test_instance_vectors_layout(self, db):
        result, _, compiled, _ = compile_and_check(db, QUERIES["group_sum"])
        vectors = compiled.instance_vectors(result)
        assert len(vectors) == len(compiled.outputs)
        for j, vec in enumerate(vectors):
            assert vec[: len(result)] == [row[j] for row in result]
            assert all(v == 0 for v in vec[len(result):])

    def test_tampered_result_breaks_binding(self, db):
        _, _, compiled, asg = compile_and_check(db, QUERIES["group_sum"])
        inst_col = compiled.instance_columns[1]
        asg.assign(inst_col, 0, asg.value(inst_col, 0) + 1)
        failures = MockProver(compiled.cs, asg, F).verify()
        assert any("result_binding" in f.name for f in failures)

    def test_table_too_big_rejected(self):
        big = Database()
        big.create_table(
            TableSchema("wide", [ColumnDef("w_id", INT)], primary_key="w_id"),
            [(i + 1,) for i in range(30)],
        )
        plan = Planner(big).plan(parse("select w_id from wide"))
        with pytest.raises(CompileError, match="capacity"):
            QueryCompiler(big, 4, limb_bits=2).compile(plan)

    def test_k_too_small_for_table(self, db):
        with pytest.raises(CompileError):
            QueryCompiler(db, 5, limb_bits=8).compile(
                Planner(db).plan(parse("select c_id from customers"))
            )

    def test_unsupported_aggregate_explains(self, db):
        plan = Planner(db).plan(
            parse("select min(o_amount) as m from orders group by o_cid")
        )
        with pytest.raises(CompileError, match="standalone"):
            QueryCompiler(db, K, limb_bits=4).compile(plan)
