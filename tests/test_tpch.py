"""TPC-H generator and the six evaluation queries."""

import pytest

from repro.algebra import SCALAR_FIELD as F
from repro.plonkish import Assignment, MockProver
from repro.sql.compiler import QueryCompiler
from repro.sql.executor import Executor
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.tpch import QUERIES, generate, query
from repro.tpch.datagen import PS_KEY_SHIFT, scale_for_lineitem_rows


@pytest.fixture(scope="module")
def db():
    return generate(256)


class TestDatagen:
    def test_deterministic(self):
        a = generate(64, seed=7)
        b = generate(64, seed=7)
        assert a.table("lineitem").columns == b.table("lineitem").columns

    def test_seed_changes_data(self):
        a = generate(64, seed=7)
        b = generate(64, seed=8)
        assert a.table("lineitem").columns != b.table("lineitem").columns

    def test_scaling_ratios(self):
        scale = scale_for_lineitem_rows(60_000)
        assert scale.orders == 15_000
        assert scale.customer == 1_500
        assert scale.supplier == 100

    def test_tiny_scale_rejected(self):
        with pytest.raises(ValueError):
            scale_for_lineitem_rows(4)

    def test_all_eight_tables(self, db):
        assert set(db.tables) == {
            "region", "nation", "supplier", "customer",
            "part", "partsupp", "orders", "lineitem",
        }
        assert len(db.table("region")) == 5
        assert len(db.table("nation")) == 25

    def test_referential_integrity(self, db):
        orders = set(db.table("orders").column("o_orderkey"))
        for fk in db.table("lineitem").column("l_orderkey"):
            assert fk in orders
        customers = set(db.table("customer").column("c_custkey"))
        for fk in db.table("orders").column("o_custkey"):
            assert fk in customers
        pskeys = set(db.table("partsupp").column("ps_pskey"))
        for fk in db.table("lineitem").column("l_pskey"):
            assert fk in pskeys

    def test_packed_partsupp_key(self, db):
        t = db.table("partsupp")
        for pskey, part, supp in zip(
            t.column("ps_pskey"), t.column("ps_partkey"), t.column("ps_suppkey")
        ):
            assert pskey == part * PS_KEY_SHIFT + supp

    def test_ship_after_order_date(self, db):
        lineitem = db.table("lineitem")
        order_dates = dict(
            zip(
                db.table("orders").column("o_orderkey"),
                db.table("orders").column("o_orderdate"),
            )
        )
        for orderkey, shipdate in zip(
            lineitem.column("l_orderkey"), lineitem.column("l_shipdate")
        ):
            assert shipdate > order_dates[orderkey]

    def test_keys_positive(self, db):
        for name, table in db.tables.items():
            pk = table.schema.primary_key
            if pk:
                assert min(table.column(pk)) >= 1, name


class TestQueries:
    def test_registry(self):
        assert set(QUERIES) == {"Q1", "Q3", "Q5", "Q8", "Q9", "Q18"}
        assert "group by" in query("Q1")
        with pytest.raises(KeyError):
            query("Q2")

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_all_queries_plan_and_execute(self, db, name):
        plan = Planner(db).plan(parse(QUERIES[name]))
        rel = Executor(db).execute(plan)
        assert rel.num_rows >= 0
        if name == "Q1":
            # Q1 groups by (returnflag, linestatus): at most 6 groups.
            assert 1 <= rel.num_rows <= 6
            assert rel.columns["count_order"] == sorted(
                rel.columns["count_order"], key=lambda _: 0
            )  # shape only

    def test_q1_aggregate_identity(self, db):
        """sum_disc_price <= sum_base_price (discounts only reduce)."""
        plan = Planner(db).plan(parse(QUERIES["Q1"]))
        rel = Executor(db).execute(plan)
        for base, disc in zip(
            rel.columns["sum_base_price"], rel.columns["sum_disc_price"]
        ):
            assert disc <= base * 100  # disc is at scale 100*100

    def test_q1_counts_cover_filtered_rows(self, db):
        plan = Planner(db).plan(parse(QUERIES["Q1"]))
        rel = Executor(db).execute(plan)
        cutoff = None
        from repro.db.types import date_to_int

        cutoff = date_to_int("1998-09-02")
        expected = sum(
            1 for d in db.table("lineitem").column("l_shipdate") if d <= cutoff
        )
        assert sum(rel.columns["count_order"]) == expected

    @pytest.mark.parametrize("name", ["Q1", "Q3"])
    def test_circuit_matches_executor(self, db, name):
        plan = Planner(db).plan(parse(QUERIES[name]))
        expected = Executor(db).execute(plan)
        compiled = QueryCompiler(
            db, 9, limb_bits=4, value_bits=32, key_bits=40
        ).compile(plan)
        asg = Assignment(compiled.cs, F, 9)
        result = compiled.assign_witness(asg, db)
        MockProver(compiled.cs, asg, F).assert_satisfied()
        exp_rows = [list(r.values()) for r in expected.rows()]
        if compiled.limit is not None:
            exp_rows = exp_rows[: compiled.limit]
        assert result == exp_rows
