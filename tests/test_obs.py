"""The observability layer: metrics registry, Prometheus exposition,
event log / error ring, the bench-regression tracker, and the proving
service's health/metrics surface.

Pins the PR's tentpole guarantees: snapshot methods return deep copies
(mutating a snapshot never mutates the registry), histogram merge is
exact across fork snapshots, ``metrics_text()`` emits *valid*
Prometheus text format (checked by the strict parser, not eyeballed),
every service job gets one stitched trace keyed by ``job_id``, and the
trend tracker flags a synthetic >15% regression against the rolling
median while letting in-band noise through.
"""

import json
import threading
import time

import pytest

from repro import PoneglyphDB, ProverConfig, ServiceConfig, telemetry
from repro.bench import trend
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import INT, STRING
from repro.errors import JobFailed, ServiceOverloaded
from repro.service import JobState, Priority
from repro.system import ProverNode
from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    HistogramSnapshot,
    MetricsRegistry,
)
from repro.telemetry.obs import ErrorRing, EventLog
from repro.telemetry import promtext


@pytest.fixture()
def tele():
    previous = telemetry.enable(True)
    telemetry.reset()
    yield telemetry
    telemetry.reset()
    telemetry.enable(previous)


# -- metrics registry ---------------------------------------------------------


class TestMetricsRegistry:
    def test_histogram_observe_and_summary(self):
        reg = MetricsRegistry()
        for ms in (1, 2, 3, 4, 100):
            reg.observe("prove.seconds", ms / 1000.0)
        snap = reg.histogram("prove.seconds")
        assert snap is not None
        assert snap.count == 5
        assert snap.sum == pytest.approx(0.110)
        assert snap.min == pytest.approx(0.001)
        assert snap.max == pytest.approx(0.100)
        summary = snap.summary()
        assert summary["count"] == 5
        # Quantiles are bucket estimates clamped to [min, max].
        assert snap.min <= summary["p50"] <= summary["p95"] <= snap.max
        assert summary["p99"] <= snap.max

    def test_bounds_inferred_from_name(self):
        reg = MetricsRegistry()
        reg.observe("verify.seconds", 0.5)
        reg.observe("msm.points_per_call", 300)
        assert reg.histogram("verify.seconds").bounds == LATENCY_BUCKETS
        assert reg.histogram("msm.points_per_call").bounds == SIZE_BUCKETS

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.observe("prove.phase_seconds", 0.1, labels={"phase": "quotient"})
        reg.observe("prove.phase_seconds", 0.2, labels={"phase": "multiopen"})
        reg.observe("prove.phase_seconds", 0.3, labels={"phase": "multiopen"})
        quotient = reg.histogram(
            "prove.phase_seconds", labels={"phase": "quotient"}
        )
        multiopen = reg.histogram(
            "prove.phase_seconds", labels={"phase": "multiopen"}
        )
        assert quotient.count == 1
        assert multiopen.count == 2
        assert reg.histogram("prove.phase_seconds") is None  # unlabelled

    def test_snapshots_are_deep_copies(self):
        """Mutating anything a snapshot method returned must never
        reach back into the registry (the satellite regression)."""
        reg = MetricsRegistry()
        reg.incr("jobs", 3)
        reg.gauge("depth", 7)
        reg.observe("wait.seconds", 0.25)

        counters = reg.counters_snapshot()
        counters["jobs"] = 999
        counters["injected"] = 1
        gauges = reg.gauges_snapshot()
        gauges["depth"] = -1
        summary = reg.summary()
        summary["counters"]["jobs"] = -5
        summary["histograms"].clear()

        assert reg.counters_snapshot() == {"jobs": 3}
        assert reg.gauges_snapshot() == {"depth": 7}
        assert reg.summary()["histograms"]  # still there
        # Histogram snapshots are frozen dataclasses with tuple state.
        snap = reg.histogram("wait.seconds")
        with pytest.raises(Exception):
            snap.count = 0

    def test_ambient_snapshots_are_copies(self, tele):
        tele.incr("obs.test_counter", 2)
        tele.metrics_summary()["counters"]["obs.test_counter"] = 0
        tele.counters_snapshot()["obs.test_counter"] = 0
        assert tele.counters_snapshot()["obs.test_counter"] == 2

    def test_merge_is_exact_for_matching_layouts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (0.001, 0.004, 0.5):
            a.observe("x.seconds", value)
        for value in (0.002, 8.0):
            b.observe("x.seconds", value)
        a.merge(
            counters={"c": 2},
            gauges={"g": 1.0},
            histograms=b.histograms_as_dicts(),
        )
        merged = a.histogram("x.seconds")
        assert merged.count == 5
        assert merged.sum == pytest.approx(0.001 + 0.004 + 0.5 + 0.002 + 8.0)
        assert merged.min == pytest.approx(0.001)
        assert merged.max == pytest.approx(8.0)
        # Bucket-wise addition: totals match an all-in-one registry.
        one = MetricsRegistry()
        for value in (0.001, 0.004, 0.5, 0.002, 8.0):
            one.observe("x.seconds", value)
        assert merged.counts == one.histogram("x.seconds").counts

    def test_merge_layout_clash_keeps_mass(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("y", 1.0, bounds=(1.0, 2.0))
        b.observe("y", 3.0, bounds=(10.0, 20.0))
        a.merge(histograms=b.histograms_as_dicts())
        merged = a.histogram("y")
        assert merged.count == 2
        assert merged.sum == pytest.approx(4.0)

    def test_snapshot_round_trips_as_dict(self):
        reg = MetricsRegistry()
        reg.observe("z.seconds", 0.125, labels={"lane": "HIGH"})
        snap = reg.histogram("z.seconds", labels={"lane": "HIGH"})
        assert HistogramSnapshot.from_dict(snap.as_dict()) == snap

    def test_empty_histogram_quantiles(self):
        snap = HistogramSnapshot(name="empty")
        assert snap.quantile(0.5) == 0.0
        assert snap.summary()["count"] == 0


# -- Prometheus exposition ----------------------------------------------------


class TestPromtext:
    def exposition(self):
        reg = MetricsRegistry()
        reg.incr("msm.calls", 42)
        reg.gauge("service.queue_depth", 3)
        for value in (0.01, 0.02, 0.04, 1.5):
            reg.observe("prove.seconds", value)
        reg.observe("prove.phase_seconds", 0.3, labels={"phase": "multiopen"})
        return promtext.render_registry(reg)

    def test_render_parses_strictly(self):
        samples = promtext.parse(self.exposition())
        assert samples["repro_msm_calls_total"] == [({}, 42.0)]
        assert samples["repro_service_queue_depth"] == [({}, 3.0)]
        buckets = samples["repro_prove_seconds_bucket"]
        assert buckets[-1][0]["le"] == "+Inf"
        assert buckets[-1][1] == 4.0
        # Bucket counts are cumulative and monotone.
        values = [value for _, value in buckets]
        assert values == sorted(values)
        assert samples["repro_prove_seconds_count"] == [({}, 4.0)]
        assert samples["repro_prove_seconds_sum"][0][1] == pytest.approx(1.57)

    def test_summary_quantiles_exposed(self):
        samples = promtext.parse(self.exposition())
        quantiles = {
            entry[0]["quantile"]: entry[1]
            for entry in samples["repro_prove_seconds_summary"]
        }
        assert set(quantiles) == {"0.5", "0.95", "0.99"}
        assert quantiles["0.5"] <= quantiles["0.95"] <= quantiles["0.99"]

    def test_labels_survive(self):
        samples = promtext.parse(self.exposition())
        phase_buckets = samples["repro_prove_phase_seconds_bucket"]
        assert all(entry[0]["phase"] == "multiopen" for entry in phase_buckets)

    def test_metric_name_sanitized(self):
        assert promtext.metric_name("msm.points_per_call") == (
            "repro_msm_points_per_call"
        )
        assert promtext.metric_name("9weird-name!") == "repro_m_9weird_name_"
        assert promtext.parse("")== {}

    def test_parse_rejects_undeclared_and_malformed(self):
        with pytest.raises(ValueError, match="no TYPE"):
            promtext.parse("mystery_metric 1\n")
        with pytest.raises(ValueError, match="bad value"):
            promtext.parse(
                "# TYPE repro_x counter\nrepro_x notanumber\n"
            )
        with pytest.raises(ValueError, match="unparsable"):
            promtext.parse("# TYPE repro_x counter\n}{ 1\n")


# -- event log + error ring ---------------------------------------------------


class TestEventLog:
    def test_ring_is_bounded_and_ordered(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("tick", n=i)
        tail = log.tail()
        assert [event["n"] for event in tail] == [2, 3, 4]
        assert [event["n"] for event in log.tail(2)] == [3, 4]
        assert log.emitted == 5
        assert all(event["ts"] > 0 for event in tail)

    def test_file_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "events" / "log.jsonl"
        with EventLog(path=path) as log:
            log.emit("submitted", job_id="job-1", queue_depth=0)
            log.emit("started", job_id="job-1", worker=object())
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert [line["event"] for line in lines] == ["submitted", "started"]
        assert lines[0]["queue_depth"] == 0
        # Non-scalar fields are stringified, never crash the emitter.
        assert isinstance(lines[1]["worker"], str)

    def test_broken_sink_disables_but_never_raises(self, tmp_path):
        log = EventLog(path=tmp_path / "log.jsonl")
        log.emit("ok")
        log._handle.close()  # simulate the disk going away mid-flight
        log.emit("after-break")  # must not raise
        log.emit("still-fine")
        assert log.write_errors == 1  # disabled after the first failure
        assert [event["event"] for event in log.tail()] == [
            "ok", "after-break", "still-fine",
        ]
        log.close()


class TestErrorRing:
    def test_record_and_evict(self):
        ring = ErrorRing(capacity=2)
        for i in range(4):
            ring.record(f"boom-{i}", job_id=f"job-{i}")
        assert ring.total == 4
        assert len(ring) == 2
        snapshot = ring.snapshot()
        assert [entry["error"] for entry in snapshot] == ["boom-2", "boom-3"]
        snapshot[0]["error"] = "mutated"
        assert ring.snapshot()[0]["error"] == "boom-2"


# -- bench trend --------------------------------------------------------------


class TestTrend:
    def seed(self, path, values, metric="prove_s", bench="b"):
        for value in values:
            trend.append_entry(bench, {metric: value}, path=path, git_sha="s")

    def test_flags_synthetic_regression(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.seed(path, [1.0, 1.02, 0.98, 1.01])
        flagged = trend.check_metrics(
            "b", {"prove_s": 1.20}, trend.load_history(path)
        )
        assert len(flagged) == 1
        regression = flagged[0]
        assert regression.metric == "prove_s"
        assert regression.baseline == pytest.approx(1.005)
        assert regression.ratio > 1.15
        assert "worse" in regression.describe()

    def test_in_band_noise_passes(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.seed(path, [1.0, 1.02, 0.98, 1.01])
        assert not trend.check_metrics(
            "b", {"prove_s": 1.10}, trend.load_history(path)
        )

    def test_higher_is_better_direction(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.seed(path, [60.0, 58.0, 62.0], metric="proofs_per_min")
        flagged = trend.check_metrics(
            "b",
            {"proofs_per_min": 40.0},
            trend.load_history(path),
            directions={"proofs_per_min": "higher"},
        )
        assert [regression.metric for regression in flagged] == [
            "proofs_per_min"
        ]
        assert not trend.check_metrics(
            "b",
            {"proofs_per_min": 70.0},  # faster is not a regression
            trend.load_history(path),
            directions={"proofs_per_min": "higher"},
        )

    def test_needs_min_samples(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.seed(path, [1.0, 1.0])  # < MIN_SAMPLES
        assert not trend.check_metrics(
            "b", {"prove_s": 50.0}, trend.load_history(path)
        )

    def test_track_appends_even_when_flagging(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.seed(path, [1.0, 1.0, 1.0])
        flagged = trend.track("b", {"prove_s": 2.0}, path=path)
        assert flagged
        assert len(trend.load_history(path)) == 4

    def test_other_benches_do_not_pollute(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.seed(path, [1.0, 1.0, 1.0], bench="other")
        assert not trend.check_metrics(
            "b", {"prove_s": 9.0}, trend.load_history(path)
        )

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.seed(path, [1.0])
        with open(path, "a") as handle:
            handle.write("not json at all\n")
            handle.write('{"bench": "b"}\n')  # no metrics dict
        assert len(trend.load_history(path)) == 1

    def test_selftest_passes(self):
        assert trend.selftest() == 0


# -- service health + exposition ---------------------------------------------


SQL = "select count(*) as n from t"


def make_db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [ColumnDef("a", INT), ColumnDef("grp", STRING)],
            primary_key="a",
        ),
        [(1, "x"), (2, "y"), (3, "x")],
    )
    return db


@pytest.fixture()
def stub_session(monkeypatch, tele):
    """A committed session whose provers answer instantly under a
    telemetry span (so jobs produce stitched traces), with gates for
    blocking and crash injection."""
    gate = threading.Event()

    def fake_answer(self, sql):
        with telemetry.span("prove", sql=sql):
            with telemetry.span("prove.stub_phase"):
                if sql.startswith("block"):
                    assert gate.wait(timeout=30), "test gate never released"
            if sql.startswith("crash"):
                raise RuntimeError("injected prover crash")
        return f"response:{sql}"

    monkeypatch.setattr(ProverNode, "answer", fake_answer)
    config = ProverConfig(
        k=6, limb_bits=4, value_bits=16, key_bits=16, use_cache=False
    )
    with PoneglyphDB.open(make_db(), config) as session:
        session.commit()
        yield session, gate


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestServiceObservability:
    def test_health_and_metrics_under_concurrent_submitters(
        self, stub_session, tmp_path
    ):
        session, _ = stub_session
        config = ServiceConfig(
            workers=2, event_log_path=tmp_path / "events.jsonl"
        )
        results = {}
        with session.serve(config) as service:

            def client(i):
                job = service.submit(f"q{i}")
                results[i] = service.wait(job, timeout=10)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert results == {i: f"response:q{i}" for i in range(8)}

            health = service.health()
            assert health["healthy"] is True
            assert health["closed"] is False
            assert health["uptime_seconds"] > 0
            assert set(health["queue"]["depths"]) == {
                lane.name for lane in Priority
            }
            assert health["queue"]["shed_count"] == 0
            assert health["jobs"] == {"DONE": 8}
            assert health["last_errors"] == []
            workers = health["workers"]
            assert len(workers) == 2
            assert all(info["alive"] for info in workers.values())
            assert (
                sum(info["completed"] for info in workers.values()) == 8
            )

            # The exposition is valid Prometheus text format and the
            # prove-latency histogram saw every job.
            samples = promtext.parse(service.metrics_text())
            assert samples["repro_service_prove_seconds_count"] == [({}, 8.0)]
            quantiles = {
                entry[0]["quantile"]
                for entry in samples["repro_service_prove_seconds_summary"]
            }
            assert quantiles == {"0.5", "0.95", "0.99"}
            assert samples["repro_service_queue_depth"] == [({}, 0.0)]
            assert samples["repro_service_workers_alive"] == [({}, 2.0)]
            wait_samples = samples["repro_service_queue_wait_seconds_count"]
            assert wait_samples == [({}, 8.0)]

            # Structured events: one submitted/started/finished triple
            # per job, with queue depth stamped at submission.
            events = service.events()
            by_kind = {}
            for event in events:
                by_kind.setdefault(event["event"], []).append(event)
            assert len(by_kind["submitted"]) == 8
            assert len(by_kind["started"]) == 8
            assert len(by_kind["finished"]) == 8
            assert all(
                "queue_depth" in event for event in by_kind["submitted"]
            )
        # After close: event log flushed to disk, health reports closed.
        lines = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert sum(1 for line in lines if line["event"] == "finished") == 8
        assert lines[-1]["event"] == "closed"
        health = service.health()
        assert health["closed"] is True
        assert health["healthy"] is False

    def test_worker_crash_surfaces_in_health(self, stub_session):
        session, _ = stub_session
        before = telemetry.counters_snapshot().get("service.jobs_failed", 0)
        with session.serve(ServiceConfig(workers=1)) as service:
            bad = service.submit("crash-1")
            with pytest.raises(JobFailed, match="injected prover crash"):
                service.wait(bad, timeout=10)
            good = service.submit("ok-after")
            service.wait(good, timeout=10)

            health = service.health()
            assert health["healthy"] is True  # the worker survived
            assert health["jobs"]["FAILED"] == 1
            (entry,) = health["last_errors"]
            assert "injected prover crash" in entry["error"]
            assert entry["job_id"] == str(bad)
            failed_events = [
                event for event in service.events()
                if event["event"] == "failed"
            ]
            assert len(failed_events) == 1
            assert failed_events[0]["job_id"] == str(bad)
        after = telemetry.counters_snapshot().get("service.jobs_failed", 0)
        assert after == before + 1

    def test_shed_job_emits_event(self, stub_session):
        session, gate = stub_session
        config = ServiceConfig(
            workers=1, max_queue_depth=2, high_priority_reserve=1
        )
        with session.serve(config) as service:
            blocker = service.submit("block-0")
            assert wait_for(
                lambda: service.status(blocker).state == JobState.RUNNING
            )
            service.submit("q1")
            with pytest.raises(ServiceOverloaded):
                service.submit("q2")
            shed = [
                event for event in service.events()
                if event["event"] == "shed"
            ]
            assert len(shed) == 1
            assert shed[0]["priority"] == "NORMAL"
            assert service.health()["queue"]["shed_count"] == 1
            gate.set()

    def test_jobs_get_stitched_traces(self, stub_session, tmp_path):
        """N jobs => N per-job span trees, recoverable from the trace
        file by the stamped job_id."""
        session, _ = stub_session
        with session.serve(ServiceConfig(workers=2)) as service:
            jobs = [service.submit(f"q{i}") for i in range(4)]
            for job in jobs:
                service.wait(job, timeout=10)
            statuses = {job: service.status(job) for job in jobs}
        trace_path = tmp_path / "trace.jsonl"
        telemetry.write_trace(trace_path, telemetry.get_tracer())
        trace = telemetry.read_trace(trace_path)
        grouped = trace.job_roots()
        for job, status in statuses.items():
            assert status.trace_id.startswith("trace-")
            (root,) = grouped[str(job)]
            assert root.attrs["trace_id"] == status.trace_id
            assert root.name == "prove"
            assert [c.name for c in root.children] == ["prove.stub_phase"]
        # Distinct jobs, distinct traces.
        assert len({s.trace_id for s in statuses.values()}) == 4

    def test_span_path_reported_while_running(self, stub_session):
        session, gate = stub_session
        with session.serve(ServiceConfig(workers=1)) as service:
            job = service.submit("block-1")
            assert wait_for(
                lambda: service.status(job).span_path
                == "prove/prove.stub_phase"
            )
            gate.set()
            service.wait(job, timeout=10)
            assert service.status(job).span_path == ""
