"""PLONKish constraint system, expressions, assignments, MockProver."""

import pytest

from repro.algebra import SCALAR_FIELD
from repro.plonkish import Assignment, ConstraintSystem, Constant, MockProver
from repro.plonkish.assignment import ZK_ROWS

F = SCALAR_FIELD


def simple_mul_circuit():
    cs = ConstraintSystem()
    q = cs.selector("q_mul")
    a = cs.advice_column("a")
    b = cs.advice_column("b")
    c = cs.advice_column("c")
    cs.create_gate("mul", [q.cur() * (a.cur() * b.cur() - c.cur())])
    return cs, q, a, b, c


class TestExpressions:
    def test_degree(self):
        cs, q, a, b, c = simple_mul_circuit()
        expr = q.cur() * (a.cur() * b.cur() - c.cur())
        assert expr.degree() == 3
        assert (a.cur() + b.cur()).degree() == 1
        assert Constant(5).degree() == 0
        assert (a.cur() * 3).degree() == 1  # scaling is degree-free

    def test_evaluate(self):
        cs, q, a, b, c = simple_mul_circuit()
        env = {(a, 0): 3, (b, 0): 4, (c, 0): 12, (q, 0): 1}
        expr = q.cur() * (a.cur() * b.cur() - c.cur())
        assert expr.evaluate(lambda col, rot: env[(col, rot)], F.p) == 0
        env[(c, 0)] = 11
        assert expr.evaluate(lambda col, rot: env[(col, rot)], F.p) == 1

    def test_rotations(self):
        cs = ConstraintSystem()
        z = cs.advice_column("z")
        expr = z.next() - z.cur()
        queries = expr.queries()
        assert (z, 1) in queries and (z, 0) in queries
        assert z.prev().rotation == -1

    def test_arithmetic_sugar(self):
        cs = ConstraintSystem()
        a = cs.advice_column("a")
        env = {(a, 0): 10}
        q = lambda col, rot: env[(col, rot)]
        assert (5 + a.cur()).evaluate(q, F.p) == 15
        assert (5 - a.cur()).evaluate(q, F.p) == (5 - 10) % F.p
        assert (-a.cur()).evaluate(q, F.p) == F.p - 10
        assert (2 * a.cur()).evaluate(q, F.p) == 20

    def test_invalid_operand_rejected(self):
        cs = ConstraintSystem()
        a = cs.advice_column("a")
        with pytest.raises(TypeError):
            _ = a.cur() + 1.5


class TestConstraintSystem:
    def test_column_indices_unique_per_kind(self):
        cs = ConstraintSystem()
        a = cs.advice_column("a")
        b = cs.advice_column("b")
        f = cs.fixed_column("f")
        assert (a.index, b.index, f.index) == (0, 1, 0)

    def test_empty_gate_rejected(self):
        cs = ConstraintSystem()
        with pytest.raises(ValueError):
            cs.create_gate("empty", [])

    def test_lookup_arity_mismatch_rejected(self):
        cs = ConstraintSystem()
        a = cs.advice_column("a")
        t = cs.fixed_column("t")
        with pytest.raises(ValueError):
            cs.add_lookup("bad", [a.cur(), a.cur()], [t.cur()])

    def test_shuffle_group_mismatch_rejected(self):
        cs = ConstraintSystem()
        a = cs.advice_column("a")
        b = cs.advice_column("b")
        with pytest.raises(ValueError):
            cs.add_shuffle("bad", [[a.cur()], [a.cur()]], [[b.cur()]])
        with pytest.raises(ValueError):
            cs.add_shuffle("empty", [], [])

    def test_instance_equality_rejected(self):
        cs = ConstraintSystem()
        inst = cs.instance_column("i")
        with pytest.raises(ValueError):
            cs.enable_equality(inst)

    def test_copy_auto_enables_equality(self):
        cs, q, a, b, c = simple_mul_circuit()
        cs.copy(a, 0, b, 1)
        assert a in cs.equality_columns and b in cs.equality_columns

    def test_required_degree_accounts_for_arguments(self):
        cs, q, a, b, c = simple_mul_circuit()
        base = cs.required_degree()
        assert base >= cs.max_gate_degree()
        t = cs.fixed_column("t")
        cs.add_lookup("l", [q.cur() * a.cur()], [t.cur()])
        assert cs.required_degree() >= 1 + 1 + 2 + 1

    def test_summary(self):
        cs, *_ = simple_mul_circuit()
        summary = cs.summary()
        assert summary["advice_columns"] == 3
        assert summary["gate_constraints"] == 1


class TestAssignment:
    def test_usable_rows(self):
        cs, *_ = simple_mul_circuit()
        asg = Assignment(cs, F, 4)
        assert asg.n_rows == 16
        assert asg.usable_rows == 16 - ZK_ROWS

    def test_blinding_rows_protected(self):
        cs, q, a, b, c = simple_mul_circuit()
        asg = Assignment(cs, F, 4)
        with pytest.raises(IndexError):
            asg.assign(a, asg.usable_rows, 1)

    def test_assign_column_overflow(self):
        cs, q, a, b, c = simple_mul_circuit()
        asg = Assignment(cs, F, 4)
        with pytest.raises(ValueError):
            asg.assign_column(a, [1] * (asg.usable_rows + 1))

    def test_query_wraps(self):
        cs, q, a, b, c = simple_mul_circuit()
        asg = Assignment(cs, F, 4)
        asg.assign(a, 0, 77)
        assert asg.query(a, asg.n_rows - 1, 1) == 77

    def test_fill_blinding_randomizes_tail(self):
        cs, q, a, b, c = simple_mul_circuit()
        asg = Assignment(cs, F, 4)
        asg.fill_blinding()
        tail = [asg.value(a, r) for r in range(asg.usable_rows, asg.n_rows)]
        assert any(v != 0 for v in tail)

    def test_too_small_circuit_rejected(self):
        cs, *_ = simple_mul_circuit()
        with pytest.raises(ValueError):
            Assignment(cs, F, 2)

    def test_instance_values(self):
        cs, *_ = simple_mul_circuit()
        out = cs.instance_column("out")
        asg = Assignment(cs, F, 4)
        asg.assign(out, 1, 9)
        assert asg.instance_values(out)[1] == 9
        with pytest.raises(ValueError):
            asg.instance_values(cs.advice_columns[0])


class TestMockProver:
    def _satisfied(self, tamper=None):
        cs, q, a, b, c = simple_mul_circuit()
        asg = Assignment(cs, F, 4)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, 6)
        asg.assign(b, 0, 7)
        asg.assign(c, 0, 42)
        if tamper:
            tamper(cs, asg, (q, a, b, c))
        return MockProver(cs, asg, F).verify()

    def test_satisfied(self):
        assert self._satisfied() == []

    def test_gate_failure_reported_with_row(self):
        def tamper(cs, asg, cols):
            asg.assign(cols[3], 0, 41)

        failures = self._satisfied(tamper)
        assert len(failures) == 1
        assert failures[0].kind == "gate"
        assert failures[0].row == 0
        assert "mul" in failures[0].name

    def test_copy_failure(self):
        def tamper(cs, asg, cols):
            cs.copy(cols[1], 0, cols[2], 0)  # a == b, but 6 != 7

        failures = self._satisfied(tamper)
        assert any(f.kind == "copy" for f in failures)

    def test_lookup_failure(self):
        def tamper(cs, asg, cols):
            q, a, b, c = cols
            t = cs.fixed_column("t")
            cs.add_lookup("rng", [q.cur() * a.cur()], [t.cur()])
            asg.fixed.append([0] * asg.n_rows)  # storage for new column
            # table only contains 0..3; a=6 is out of range

        failures = self._satisfied(tamper)
        assert any(f.kind == "lookup" for f in failures)

    def test_shuffle_failure(self):
        def tamper(cs, asg, cols):
            q, a, b, c = cols
            d = cs.advice_column("d")
            asg.advice.append([0] * asg.n_rows)
            cs.add_shuffle("sh", [[a.cur()]], [[d.cur()]])
            # d stays all zeros, a has a 6 -> multisets differ

        failures = self._satisfied(tamper)
        assert any(f.kind == "shuffle" for f in failures)

    def test_assert_satisfied_raises_with_report(self):
        cs, q, a, b, c = simple_mul_circuit()
        asg = Assignment(cs, F, 4)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, 2)
        asg.assign(b, 0, 2)
        asg.assign(c, 0, 5)
        with pytest.raises(AssertionError, match="mul"):
            MockProver(cs, asg, F).assert_satisfied()
