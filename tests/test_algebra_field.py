"""Field arithmetic: axioms, inversion, batch inversion, square roots."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import BASE_FIELD, SCALAR_FIELD, Field, Felt
from repro.algebra.field import montgomery_batch_inv
from repro.errors import BatchInversionError

FIELDS = [BASE_FIELD, SCALAR_FIELD]

elements = st.integers(min_value=0, max_value=SCALAR_FIELD.p - 1)


class TestFieldBasics:
    def test_moduli_are_distinct_255_bit_primes(self):
        assert BASE_FIELD.p != SCALAR_FIELD.p
        assert BASE_FIELD.p.bit_length() == 255
        assert SCALAR_FIELD.p.bit_length() == 255

    @pytest.mark.parametrize("f", FIELDS)
    def test_two_adicity_is_32(self, f):
        assert f.two_adicity == 32
        assert (f.p - 1) % (1 << 32) == 0
        assert (f.p - 1) % (1 << 33) != 0

    @pytest.mark.parametrize("f", FIELDS)
    def test_root_of_unity_has_exact_order(self, f):
        w = f.root_of_unity
        assert pow(w, 1 << 32, f.p) == 1
        assert pow(w, 1 << 31, f.p) != 1

    @pytest.mark.parametrize("f", FIELDS)
    def test_generator_is_nonresidue(self, f):
        assert f.legendre(f.multiplicative_generator) == -1

    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            Field(10)

    def test_root_of_unity_of_order(self, field):
        for k in (1, 2, 8, 16):
            w = field.root_of_unity_of_order(1 << k)
            assert pow(w, 1 << k, field.p) == 1
            assert pow(w, 1 << (k - 1), field.p) != 1

    def test_root_of_unity_rejects_non_power_of_two(self, field):
        with pytest.raises(ValueError):
            field.root_of_unity_of_order(12)

    def test_root_of_unity_rejects_excess_order(self, field):
        with pytest.raises(ValueError):
            field.root_of_unity_of_order(1 << 40)


class TestFieldOps:
    @given(a=elements, b=elements)
    @settings(max_examples=50)
    def test_add_sub_roundtrip(self, a, b):
        f = SCALAR_FIELD
        assert f.sub(f.add(a, b), b) == a % f.p

    @given(a=elements)
    @settings(max_examples=50)
    def test_inverse(self, a):
        f = SCALAR_FIELD
        if a % f.p == 0:
            with pytest.raises(ZeroDivisionError):
                f.inv(a)
        else:
            assert f.mul(a, f.inv(a)) == 1

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=50)
    def test_distributivity(self, a, b, c):
        f = SCALAR_FIELD
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))

    def test_batch_inv_matches_single(self, field, rng):
        values = [rng.randrange(1, field.p) for _ in range(37)]
        batch = field.batch_inv(values)
        for v, inv in zip(values, batch):
            assert field.mul(v, inv) == 1

    def test_batch_inv_empty(self, field):
        assert field.batch_inv([]) == []

    def test_batch_inv_zero_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            field.batch_inv([1, 2, 0, 4])

    def test_batch_inv_zero_error_names_index(self, field):
        """The typed error reports exactly which input was zero."""
        with pytest.raises(BatchInversionError) as excinfo:
            field.batch_inv([1, 2, 0, 4])
        assert excinfo.value.index == 2
        assert "index 2" in str(excinfo.value)

    def test_batch_inv_zero_detected_up_front(self, field):
        """A congruent-to-zero value (p itself) is caught before any
        work, at its own index -- not discovered mid-ladder."""
        with pytest.raises(BatchInversionError) as excinfo:
            montgomery_batch_inv([3, field.p, 5], field.p)
        assert excinfo.value.index == 1

    def test_batch_inv_zero_error_is_value_and_zero_division(self, field):
        """Historical handlers catch either builtin type."""
        with pytest.raises(ValueError):
            field.batch_inv([0])
        with pytest.raises(ZeroDivisionError):
            montgomery_batch_inv([7, 0], field.p)

    @given(a=elements)
    @settings(max_examples=30)
    def test_sqrt_consistency(self, a):
        f = SCALAR_FIELD
        root = f.sqrt(a)
        if root is None:
            assert f.legendre(a) == -1
        else:
            assert f.mul(root, root) == a % f.p

    def test_signed_roundtrip(self, field):
        for v in (-5, -1, 0, 1, 123456):
            assert field.to_signed(field.from_signed(v)) == v

    def test_pow_negative_exponent(self, field):
        assert field.mul(field.pow(7, -3), field.pow(7, 3)) == 1

    def test_hash_to_field_deterministic(self, field):
        assert field.hash_to_field(b"a", b"b") == field.hash_to_field(b"a", b"b")
        assert field.hash_to_field(b"a") != field.hash_to_field(b"b")

    def test_bytes_roundtrip(self, field, rng):
        for _ in range(5):
            v = rng.randrange(field.p)
            assert field.from_bytes(field.to_bytes(v)) == v


class TestFelt:
    def test_operators(self, field):
        a = field.felt(10)
        b = field.felt(3)
        assert (a + b).n == 13
        assert (a - b).n == 7
        assert (a * b).n == 30
        assert (a / b * b) == a
        assert (a ** 2).n == 100
        assert (-a + a).n == 0
        assert (5 + a).n == 15
        assert (5 - a) == field.felt(-5)
        assert a.inv() * a == field.felt(1)
        assert int(b) == 3

    def test_int_comparison(self, field):
        assert field.felt(-1) == field.p - 1

    def test_cross_field_mixing_raises(self):
        a = BASE_FIELD.felt(1)
        b = SCALAR_FIELD.felt(1)
        with pytest.raises(ValueError):
            _ = a + b

    def test_felt_hashable(self, field):
        assert len({field.felt(1), field.felt(1), field.felt(2)}) == 2
