"""End-to-end proving system tests: honest proofs verify, every class of
cheating is rejected, and the recursion accumulator batches checks.

These are the slowest unit tests in the suite (real curve arithmetic),
so circuits are kept at k=5 (32 rows).
"""

import pytest

from repro.algebra import SCALAR_FIELD
from repro.plonkish import Assignment, ConstraintSystem, MockProver
from repro.proving import Accumulator, create_proof, keygen, verify_proof
from repro.proving.keygen import finalize_fixed
from repro.proving.prover import ProverTiming, ProvingError

F = SCALAR_FIELD
K = 5


def build_circuit():
    """The paper's Example 2.1 pipeline f(x,y,z) = 3*(x+y)*z plus a
    4-bit range lookup on column a, exercising gates, copies, lookups
    and the instance column at once."""
    cs = ConstraintSystem()
    q_add = cs.selector("q_add")
    q_mul = cs.selector("q_mul")
    q_range = cs.selector("q_range")
    q_out = cs.selector("q_out")
    table = cs.fixed_column("range_table")
    a = cs.advice_column("a")
    b = cs.advice_column("b")
    c = cs.advice_column("c")
    out = cs.instance_column("out")
    cs.create_gate("add", [q_add.cur() * (a.cur() + b.cur() - c.cur())])
    cs.create_gate("mul", [q_mul.cur() * (a.cur() * b.cur() - c.cur())])
    cs.create_gate("out", [q_out.cur() * (c.cur() - out.cur())])
    cs.add_lookup("range16", [q_range.cur() * a.cur()], [table.cur()])
    return cs, dict(
        q_add=q_add, q_mul=q_mul, q_range=q_range, q_out=q_out,
        table=table, a=a, b=b, c=c, out=out,
    )


def assign_circuit(cs, cols, x=7, y=11, z=13, break_mul=False):
    asg = Assignment(cs, F, K)
    asg.assign_column(cols["table"], list(range(16)))
    asg.assign(cols["q_add"], 0, 1)
    asg.assign(cols["a"], 0, x)
    asg.assign(cols["b"], 0, y)
    asg.assign(cols["c"], 0, x + y)
    asg.assign(cols["q_range"], 0, 1)
    asg.assign(cols["q_mul"], 1, 1)
    asg.assign(cols["a"], 1, z)
    asg.assign(cols["b"], 1, x + y)
    asg.assign(cols["c"], 1, (x + y) * z)
    asg.assign(cols["q_mul"], 2, 1)
    asg.assign(cols["a"], 2, 3)
    asg.assign(cols["b"], 2, (x + y) * z)
    result = 3 * (x + y) * z
    if break_mul:
        result += 1
    asg.assign(cols["c"], 2, result)
    asg.assign(cols["q_out"], 2, 1)
    asg.assign(cols["out"], 2, result)
    return asg, result


@pytest.fixture(scope="module")
def proven(params_k6_module):
    """One honest (pk, proof, instance) triple shared by read-only tests."""
    cs, cols = build_circuit()
    cs.copy(cols["c"], 0, cols["b"], 1)
    cs.copy(cols["c"], 1, cols["b"], 2)
    asg, result = assign_circuit(cs, cols)
    pk = keygen(params_k6_module, cs, F, K)
    finalize_fixed(pk, asg)
    proof = create_proof(pk, asg)
    instance = [asg.instance_values(cols["out"])[: asg.usable_rows]]
    return pk, proof, instance, result


@pytest.fixture(scope="module")
def params_k6_module():
    from repro.commit import setup

    return setup(K)


class TestHonestProofs:
    def test_verifies(self, proven):
        pk, proof, instance, _ = proven
        assert verify_proof(pk.vk, proof, instance)

    def test_mock_agrees(self):
        cs, cols = build_circuit()
        cs.copy(cols["c"], 0, cols["b"], 1)
        asg, _ = assign_circuit(cs, cols)
        assert MockProver(cs, asg, F).verify() == []

    def test_proof_is_nondeterministic_but_both_verify(
        self, params_k6_module
    ):
        # Fresh blinding every run: proofs differ, both verify (ZK
        # proofs are randomized).
        cs, cols = build_circuit()
        asg, _ = assign_circuit(cs, cols)
        pk = keygen(params_k6_module, cs, F, K)
        finalize_fixed(pk, asg)
        p1 = create_proof(pk, asg)
        p2 = create_proof(pk, asg)
        assert p1.advice_commitments != p2.advice_commitments
        instance = [asg.instance_values(cols["out"])[: asg.usable_rows]]
        assert verify_proof(pk.vk, p1, instance)
        assert verify_proof(pk.vk, p2, instance)

    def test_timing_instrumentation(self, params_k6_module):
        cs, cols = build_circuit()
        asg, _ = assign_circuit(cs, cols)
        pk = keygen(params_k6_module, cs, F, K)
        finalize_fixed(pk, asg)
        timing = ProverTiming()
        create_proof(pk, asg, timing=timing)
        assert timing.total > 0
        assert timing.commit_advice > 0
        assert timing.quotient > 0
        parts = (
            timing.commit_advice + timing.lookups + timing.permutations
            + timing.quotient + timing.evaluations + timing.multiopen
        )
        assert parts <= timing.total

    def test_proof_serialization_roundtrip_size(self, proven):
        _, proof, _, _ = proven
        data = proof.to_bytes()
        assert len(data) >= proof.size_bytes() * 0.5  # same order of magnitude
        assert data == proof.to_bytes()


class TestRejection:
    def test_wrong_instance_rejected(self, proven):
        pk, proof, instance, result = proven
        bad = [list(instance[0])]
        bad[0][2] = (result + 1) % F.p
        assert not verify_proof(pk.vk, proof, bad)

    def test_wrong_witness_rejected(self, params_k6_module):
        cs, cols = build_circuit()
        asg, result = assign_circuit(cs, cols, break_mul=True)
        pk = keygen(params_k6_module, cs, F, K)
        finalize_fixed(pk, asg)
        proof = create_proof(pk, asg)
        instance = [asg.instance_values(cols["out"])[: asg.usable_rows]]
        assert not verify_proof(pk.vk, proof, instance)

    def test_copy_violation_rejected(self, params_k6_module):
        cs, cols = build_circuit()
        cs.copy(cols["a"], 0, cols["b"], 0)  # 7 != 11, violated
        asg, _ = assign_circuit(cs, cols)
        pk = keygen(params_k6_module, cs, F, K)
        finalize_fixed(pk, asg)
        proof = create_proof(pk, asg)
        instance = [asg.instance_values(cols["out"])[: asg.usable_rows]]
        assert not verify_proof(pk.vk, proof, instance)

    def test_lookup_violation_unprovable(self, params_k6_module):
        cs, cols = build_circuit()
        asg, _ = assign_circuit(cs, cols, x=99)  # 99 outside [0,16)
        pk = keygen(params_k6_module, cs, F, K)
        finalize_fixed(pk, asg)
        with pytest.raises(ProvingError):
            create_proof(pk, asg)

    def test_tampered_commitment_rejected(self, proven, params_k6_module):
        pk, proof, instance, _ = proven
        import copy

        bad = copy.deepcopy(proof)
        bad.advice_commitments[0] = bad.advice_commitments[0].double()
        assert not verify_proof(pk.vk, bad, instance)

    def test_tampered_eval_rejected(self, proven):
        pk, proof, instance, _ = proven
        import copy

        bad = copy.deepcopy(proof)
        key = next(iter(bad.advice_evals))
        bad.advice_evals[key] = (bad.advice_evals[key] + 1) % F.p
        assert not verify_proof(pk.vk, bad, instance)

    def test_wrong_instance_count_rejected(self, proven):
        pk, proof, instance, _ = proven
        assert not verify_proof(pk.vk, proof, [])
        assert not verify_proof(pk.vk, proof, instance + [[1]])

    def test_oversized_instance_rejected(self, proven):
        pk, proof, _, _ = proven
        too_long = [[0] * (pk.vk.n_rows + 1)]
        assert not verify_proof(pk.vk, proof, too_long)


class TestAccumulator:
    def test_deferred_verification(self, proven, params_k6_module):
        pk, proof, instance, _ = proven
        acc = Accumulator(pk.vk.params, F)
        assert verify_proof(pk.vk, proof, instance, accumulator=acc)
        assert acc.deferred_count >= 1
        assert acc.finalize()

    def test_accumulator_rejects_batch_with_bad_proof(
        self, proven, params_k6_module
    ):
        pk, proof, instance, result = proven
        acc = Accumulator(pk.vk.params, F)
        assert verify_proof(pk.vk, proof, instance, accumulator=acc)
        # Proof against a wrong instance fails fast (constraint check),
        # so craft a subtly-broken batch: tamper an opening proof value.
        import copy

        bad = copy.deepcopy(proof)
        _, ipa = bad.openings[0]
        ipa.a = (ipa.a + 1) % F.p
        # Constraint check still passes; the deferred MSM must catch it.
        verified = verify_proof(pk.vk, bad, instance, accumulator=acc)
        assert not (verified and acc.finalize())
