"""IPA polynomial commitment: hiding/binding behaviour, open/verify,
proof sizes, and the deferred (accumulated) verification path."""

import pytest

from repro.algebra import Polynomial, SCALAR_FIELD
from repro.commit import (
    commit_polynomial,
    open_polynomial,
    pedersen_commit,
    setup,
    verify_opening,
)
from repro.commit.ipa import reduce_opening
from repro.proving.recursion import Accumulator
from repro.transcript import Transcript

F = SCALAR_FIELD


def _open_and_verify(params, coeffs, x, tamper=None):
    blind = F.rand()
    commitment = commit_polynomial(params, coeffs, blind)
    value = Polynomial(F, coeffs).evaluate(x)
    tp = Transcript(b"t")
    tp.absorb_point(b"c", commitment)
    tp.absorb_scalar(b"x", x)
    tp.absorb_scalar(b"v", value)
    proof = open_polynomial(params, tp, coeffs, blind, x, F)
    if tamper:
        commitment, x, value, proof = tamper(commitment, x, value, proof)
    tv = Transcript(b"t")
    tv.absorb_point(b"c", commitment)
    tv.absorb_scalar(b"x", x)
    tv.absorb_scalar(b"v", value)
    return verify_opening(params, tv, commitment, x, value, proof, F)


class TestPublicParams:
    def test_setup_deterministic(self):
        a, b = setup(3), setup(3)
        assert a.g == b.g and a.w == b.w and a.u == b.u

    def test_label_separation(self):
        assert setup(2).g[0] != setup(2, label=b"other").g[0]

    def test_truncation(self, params_k6):
        small = params_k6.truncated(4)
        assert small.n == 16
        assert small.g == params_k6.g[:16]
        with pytest.raises(ValueError):
            params_k6.truncated(7)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            setup(0)


class TestPedersen:
    def test_homomorphic(self, params_k6, rng):
        v1 = [rng.randrange(F.p) for _ in range(8)]
        v2 = [rng.randrange(F.p) for _ in range(8)]
        r1, r2 = F.rand(), F.rand()
        c1 = pedersen_commit(params_k6, v1, r1)
        c2 = pedersen_commit(params_k6, v2, r2)
        summed = pedersen_commit(
            params_k6, [(a + b) % F.p for a, b in zip(v1, v2)], (r1 + r2) % F.p
        )
        assert c1 + c2 == summed

    def test_hiding_blind_changes_commitment(self, params_k6):
        values = [1, 2, 3]
        assert pedersen_commit(params_k6, values, 1) != pedersen_commit(
            params_k6, values, 2
        )

    def test_oversized_vector_rejected(self, params_k6):
        with pytest.raises(ValueError):
            pedersen_commit(params_k6, [1] * 65, 0)


class TestIpaOpening:
    def test_roundtrip(self, params_k6, rng):
        coeffs = [rng.randrange(F.p) for _ in range(50)]
        assert _open_and_verify(params_k6, coeffs, F.rand())

    def test_opening_at_zero(self, params_k6, rng):
        coeffs = [rng.randrange(F.p) for _ in range(10)]
        assert _open_and_verify(params_k6, coeffs, 0)

    def test_constant_polynomial(self, params_k6):
        assert _open_and_verify(params_k6, [42], 7)

    def test_wrong_value_rejected(self, params_k6, rng):
        coeffs = [rng.randrange(F.p) for _ in range(20)]

        def tamper(c, x, v, proof):
            return c, x, (v + 1) % F.p, proof

        assert not _open_and_verify(params_k6, coeffs, F.rand(), tamper)

    def test_wrong_point_rejected(self, params_k6, rng):
        coeffs = [rng.randrange(F.p) for _ in range(20)]

        def tamper(c, x, v, proof):
            return c, (x + 1) % F.p, v, proof

        assert not _open_and_verify(params_k6, coeffs, F.rand(), tamper)

    def test_tampered_round_rejected(self, params_k6, rng):
        coeffs = [rng.randrange(F.p) for _ in range(20)]

        def tamper(c, x, v, proof):
            left, right = proof.rounds[0]
            proof.rounds[0] = (left.double(), right)
            return c, x, v, proof

        assert not _open_and_verify(params_k6, coeffs, F.rand(), tamper)

    def test_truncated_proof_rejected(self, params_k6, rng):
        coeffs = [rng.randrange(F.p) for _ in range(20)]

        def tamper(c, x, v, proof):
            proof.rounds = proof.rounds[:-1]
            return c, x, v, proof

        assert not _open_and_verify(params_k6, coeffs, F.rand(), tamper)

    def test_proof_size_is_logarithmic(self):
        # 2 points per round, k rounds, plus 2 scalars.
        for k in (2, 4):
            params = setup(k)
            coeffs = [3] * (1 << k)
            blind = F.rand()
            commitment = commit_polynomial(params, coeffs, blind)
            tp = Transcript(b"t")
            proof = open_polynomial(params, tp, coeffs, blind, 5, F)
            assert len(proof.rounds) == k
            assert proof.size_bytes() == 2 * k * 64 + 64

    def test_proof_serialization(self, params_k6, rng):
        coeffs = [rng.randrange(F.p) for _ in range(12)]
        tp = Transcript(b"t")
        proof = open_polynomial(params_k6, tp, coeffs, F.rand(), 5, F)
        data = proof.to_bytes()
        assert len(data) > 0
        assert data == proof.to_bytes()  # deterministic


class TestDeferredVerification:
    def test_reduce_matches_verify(self, params_k6, rng):
        coeffs = [rng.randrange(F.p) for _ in range(30)]
        blind = F.rand()
        commitment = commit_polynomial(params_k6, coeffs, blind)
        x = F.rand()
        value = Polynomial(F, coeffs).evaluate(x)
        tp = Transcript(b"t")
        proof = open_polynomial(params_k6, tp, coeffs, blind, x, F)
        tv = Transcript(b"t")
        reduced = reduce_opening(params_k6, tv, commitment, x, value, proof, F)
        assert reduced is not None

    def test_accumulator_batches_many_openings(self, params_k6, rng):
        acc = Accumulator(params_k6, F)
        for _ in range(3):
            coeffs = [rng.randrange(F.p) for _ in range(30)]
            blind = F.rand()
            commitment = commit_polynomial(params_k6, coeffs, blind)
            x = F.rand()
            value = Polynomial(F, coeffs).evaluate(x)
            tp = Transcript(b"t")
            proof = open_polynomial(params_k6, tp, coeffs, blind, x, F)
            tv = Transcript(b"t")
            assert acc.defer_opening(params_k6, tv, commitment, x, value, proof, F)
        assert acc.deferred_count == 3
        assert acc.finalize()

    def test_accumulator_catches_bad_proof(self, params_k6, rng):
        acc = Accumulator(params_k6, F)
        coeffs = [rng.randrange(F.p) for _ in range(30)]
        blind = F.rand()
        commitment = commit_polynomial(params_k6, coeffs, blind)
        x = F.rand()
        tp = Transcript(b"t")
        proof = open_polynomial(params_k6, tp, coeffs, blind, x, F)
        wrong_value = (Polynomial(F, coeffs).evaluate(x) + 1) % F.p
        tv = Transcript(b"t")
        assert acc.defer_opening(
            params_k6, tv, commitment, x, wrong_value, proof, F
        )  # structurally fine, deferred
        assert not acc.finalize()  # but the combined check fails

    def test_empty_accumulator_finalizes(self, params_k6):
        assert Accumulator(params_k6, F).finalize()
