"""End-to-end system tests: commitment, audit, real proofs, scan-link
binding, and every rejection path a malicious prover could hit.

These run the full cryptographic pipeline at k=7, so they are the
slowest tests in the suite; the shared module fixture amortizes setup.
"""

import copy

import pytest

from repro.algebra import SCALAR_FIELD as F
from repro.commit import setup
from repro.config import ProverConfig
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import INT, STRING
from repro.proving.recursion import Accumulator
from repro.system import ProverNode, VerifierNode, audit

K = 7
CONFIG = ProverConfig(
    k=K, limb_bits=4, value_bits=24, key_bits=16, use_cache=False
)
SQL = (
    "select a_region, sum(a_balance) as total, count(*) as cnt "
    "from accounts where a_balance >= 75 group by a_region "
    "order by total desc"
)


@pytest.fixture(scope="module")
def system():
    db = Database()
    db.create_table(
        TableSchema(
            "accounts",
            [
                ColumnDef("a_id", INT),
                ColumnDef("a_region", STRING),
                ColumnDef("a_balance", INT),
            ],
            primary_key="a_id",
        ),
        [
            (1, "west", 500),
            (2, "east", 120),
            (3, "west", 75),
            (4, "east", 310),
            (5, "west", 45),
        ],
    )
    params = setup(K)
    prover = ProverNode(db, params, config=CONFIG)
    commitment = prover.publish_commitment()
    verifier = VerifierNode(params, prover.public_metadata(), commitment)
    response = prover.answer(SQL)
    return db, params, prover, verifier, commitment, response


class TestHappyPath:
    def test_result_decoded(self, system):
        *_, response = system
        assert response.result == [["west", 575, 2], ["east", 430, 2]]
        assert response.column_names == ["accounts.a_region", "total", "cnt"]

    def test_proof_accepted(self, system):
        _, _, _, verifier, _, response = system
        report = verifier.verify(response)
        assert report.accepted, report.reason
        assert report.proof_size_bytes == response.proof_size_bytes

    def test_accumulated_verification(self, system):
        _, _, _, verifier, _, response = system
        acc = Accumulator(verifier.params, F)
        assert verifier.verify(response, accumulator=acc).accepted
        assert acc.deferred_count >= 1
        assert acc.finalize()

    def test_audit(self, system):
        db, params, prover, *_ = system
        cert = audit(db, prover.commitment, prover._secrets, params)
        assert cert.valid

    def test_timing_recorded(self, system):
        *_, response = system
        assert response.timing.total > 0
        assert response.timing.commit_advice > 0

    def test_answer_requires_commitment(self, system):
        db, params, *_ = system
        fresh = ProverNode(db, params, config=CONFIG)
        with pytest.raises(RuntimeError):
            fresh.answer(SQL)


class TestWireFormat:
    def test_roundtrip_through_rebuilt_vk(self, system):
        """The verifier's independently-rebuilt vk decodes the wire
        bytes back to exactly the prover's proof object."""
        from repro.proving.proof import Proof

        _, _, _, verifier, _, response = system
        _, vk = verifier.rebuild_verifying_key(
            response.sql, len(response.result_encoded)
        )
        decoded = Proof.from_bytes(vk, response.wire_bytes())
        assert decoded == response.proof
        assert decoded.to_bytes() == response.wire_bytes()

    def test_response_carries_wire_bytes(self, system):
        *_, response = system
        assert response.proof_bytes
        assert response.wire_bytes() == response.proof_bytes
        assert response.proof_size_bytes == len(response.proof_bytes)


class TestRejections:
    def test_tampered_result_value(self, system):
        _, _, _, verifier, _, response = system
        bad = copy.deepcopy(response)
        bad.result_encoded[0][1] += 1
        assert not verifier.verify(bad).accepted

    def test_dropped_result_row(self, system):
        _, _, _, verifier, _, response = system
        bad = copy.deepcopy(response)
        bad.result_encoded.pop()
        assert not verifier.verify(bad).accepted

    def test_extra_result_row(self, system):
        _, _, _, verifier, _, response = system
        bad = copy.deepcopy(response)
        bad.result_encoded.append([1, 1, 1])
        assert not verifier.verify(bad).accepted

    def test_wrong_query_text(self, system):
        _, _, _, verifier, _, response = system
        bad = copy.deepcopy(response)
        bad.sql = SQL.replace(">= 75", ">= 100")
        assert not verifier.verify(bad).accepted

    def test_tampered_scan_delta(self, system):
        _, _, _, verifier, _, response = system
        bad = copy.deepcopy(response)
        bad.scan_links[0].delta += 1
        report = verifier.verify(bad)
        assert not report.accepted
        assert "committed database" in report.reason or "scan" in report.reason

    def test_proof_over_different_database(self, system):
        """A prover with a *different* database cannot pass the
        scan-link check against the published commitment."""
        db, params, _, verifier, _, _ = system
        other = Database()
        other.create_table(
            TableSchema(
                "accounts",
                [
                    ColumnDef("a_id", INT),
                    ColumnDef("a_region", STRING),
                    ColumnDef("a_balance", INT),
                ],
                primary_key="a_id",
            ),
            [
                (1, "west", 999),  # inflated balance
                (2, "east", 120),
                (3, "west", 75),
                (4, "east", 310),
                (5, "west", 45),
            ],
        )
        rogue = ProverNode(other, params, config=CONFIG)
        rogue.publish_commitment()  # its own commitment, not the published one
        response = rogue.answer(SQL)
        report = verifier.verify(response)  # against the ORIGINAL commitment
        assert not report.accepted

    def test_malformed_sql_rejected(self, system):
        _, _, _, verifier, _, response = system
        bad = copy.deepcopy(response)
        bad.sql = "select ??? from"
        report = verifier.verify(bad)
        assert not report.accepted
        assert "recompilation" in report.reason

    def test_truncated_proof_bytes_rejected(self, system):
        _, _, _, verifier, _, response = system
        bad = copy.deepcopy(response)
        bad.proof_bytes = response.wire_bytes()[:-5]
        report = verifier.verify(bad)
        assert not report.accepted
        assert "decode" in report.reason

    def test_bitflipped_proof_bytes_rejected(self, system):
        _, _, _, verifier, _, response = system
        honest = response.wire_bytes()
        flipped = bytearray(honest)
        flipped[len(honest) // 2] ^= 0x40
        bad = copy.deepcopy(response)
        bad.proof_bytes = bytes(flipped)
        assert not verifier.verify(bad).accepted

    def test_proof_for_different_query_rejected(self, system):
        """Replaying query B's (valid) proof bytes against query A's vk
        must fail: the decoder pins the proof shape to A's circuit."""
        _, _, prover, verifier, _, response = system
        other = prover.answer("select count(*) as n from accounts")
        assert verifier.verify(other).accepted  # honest on its own
        bad = copy.deepcopy(response)
        bad.proof_bytes = other.wire_bytes()
        bad.proof = other.proof
        report = verifier.verify(bad)
        assert not report.accepted

    def test_audit_rejects_modified_database(self, system):
        db, params, prover, *_ = system
        other = Database()
        other.create_table(
            TableSchema(
                "accounts",
                [
                    ColumnDef("a_id", INT),
                    ColumnDef("a_region", STRING),
                    ColumnDef("a_balance", INT),
                ],
                primary_key="a_id",
            ),
            [(1, "west", 1)] + [
                (i, "east", 2) for i in range(2, 6)
            ],
        )
        cert = audit(other, prover.commitment, prover._secrets, params)
        assert not cert.valid
