"""Baselines: the GKR/sumcheck stack (Libra) and the ZKSQL simulator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import SCALAR_FIELD as F
from repro.baselines.cost_models import (
    PAPER,
    PaperCalibration,
    circuit_rows_for_scale,
)
from repro.baselines.gkr import (
    Gate,
    GateKind,
    LayeredCircuit,
    MultilinearPoly,
    gkr_prove,
    gkr_verify,
)
from repro.baselines.gkr.multilinear import eq_eval, eq_weights
from repro.baselines.gkr.sql_circuits import DagBuilder, filter_sum_circuit
from repro.baselines.gkr.sumcheck import sumcheck_prove, sumcheck_verify
from repro.baselines.zksql import ZkSqlSimulator
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.tpch import QUERIES, generate
from repro.transcript import Transcript


class TestMultilinear:
    def test_boolean_points_recover_table(self):
        values = [5, 9, 2, 7]
        ml = MultilinearPoly(values)
        for i, v in enumerate(values):
            point = [(i >> j) & 1 for j in range(2)]
            assert ml.evaluate(point) == v

    def test_eq_weights_are_basis(self, rng):
        values = [rng.randrange(F.p) for _ in range(8)]
        ml = MultilinearPoly(values)
        point = [F.rand() for _ in range(3)]
        weights = eq_weights(point)
        assert sum(v * w for v, w in zip(values, weights)) % F.p == ml.evaluate(point)

    def test_eq_eval_on_booleans(self):
        assert eq_eval([1, 0], [1, 0]) == 1
        assert eq_eval([1, 0], [0, 0]) == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            MultilinearPoly([1, 2, 3])

    def test_fold_first(self):
        ml = MultilinearPoly([1, 2, 3, 4])
        r = F.rand()
        folded = ml.fold_first(r)
        assert folded.evaluate([0]) == ml.evaluate([r, 0])


class TestSumcheck:
    def _tables(self, m, rng):
        size = 1 << m
        return tuple(
            [rng.randrange(F.p) for _ in range(size)] for _ in range(4)
        )

    def test_roundtrip(self, rng):
        tables = self._tables(4, rng)
        a, b, c, d = tables
        claim = sum(
            (a[i] * (b[i] + c[i]) + d[i] * b[i] * c[i]) % F.p
            for i in range(16)
        ) % F.p
        tp = Transcript(b"sc")
        proof, point, finals = sumcheck_prove(tables, tp, F)
        tv = Transcript(b"sc")
        ok, challenges, reduced = sumcheck_verify(claim, proof, tv, F)
        assert ok and challenges == point
        fa, fb, fc, fd = finals
        assert reduced == (fa * (fb + fc) + fd * fb * fc) % F.p
        # finals really are the multilinear evaluations at the point
        assert MultilinearPoly(list(tables[0])).evaluate(point) == fa

    def test_wrong_claim_rejected(self, rng):
        tables = self._tables(3, rng)
        tp = Transcript(b"sc")
        proof, _, _ = sumcheck_prove(tables, tp, F)
        tv = Transcript(b"sc")
        ok, _, _ = sumcheck_verify(12345, proof, tv, F)
        assert not ok


class TestGkr:
    def _random_circuit(self, width, depth, rng):
        circuit = LayeredCircuit(width)
        for _ in range(depth):
            circuit.add_layer(
                [
                    Gate(
                        rng.choice([GateKind.ADD, GateKind.MUL]),
                        rng.randrange(width),
                        rng.randrange(width),
                    )
                    for _ in range(width)
                ]
            )
        inputs = [0, 1] + [rng.randrange(1000) for _ in range(width - 2)]
        return circuit, inputs

    def test_honest_proof_verifies(self, rng):
        circuit, inputs = self._random_circuit(8, 3, rng)
        proof = gkr_prove(circuit, inputs)
        assert gkr_verify(circuit, inputs, proof)

    def test_tampered_output_rejected(self, rng):
        circuit, inputs = self._random_circuit(8, 3, rng)
        proof = gkr_prove(circuit, inputs)
        proof.outputs[0] = (proof.outputs[0] + 1) % F.p
        assert not gkr_verify(circuit, inputs, proof)

    def test_tampered_layer_claim_rejected(self, rng):
        circuit, inputs = self._random_circuit(8, 3, rng)
        proof = gkr_prove(circuit, inputs)
        proof.layers[1].w_u = (proof.layers[1].w_u + 1) % F.p
        assert not gkr_verify(circuit, inputs, proof)

    def test_wrong_inputs_rejected(self, rng):
        circuit, inputs = self._random_circuit(8, 3, rng)
        proof = gkr_prove(circuit, inputs)
        other = list(inputs)
        other[3] = (other[3] + 1) % F.p
        assert not gkr_verify(circuit, other, proof)

    def test_input_zero_convention(self):
        circuit = LayeredCircuit(4)
        circuit.add_layer([Gate(GateKind.ADD, 2, 3)])
        with pytest.raises(ValueError):
            circuit.evaluate([7, 1, 2, 3])

    def test_out_of_range_gate_rejected(self):
        circuit = LayeredCircuit(4)
        with pytest.raises(ValueError):
            circuit.add_layer([Gate(GateKind.ADD, 0, 9)])


class TestLibraSqlCircuits:
    def test_dag_builder_arithmetic(self):
        builder = DagBuilder(4)
        x = builder.input(3)
        y = builder.mul(builder.add(x, builder.one), x)  # (x+1)*x
        circuit, stats = builder.build([y])
        out = circuit.evaluate([0, 1, F.p - 1, 6])
        assert out[-1][0] == 42
        assert stats["depth"] >= 2

    @given(threshold=st.integers(0, 255))
    @settings(max_examples=5, deadline=None)
    def test_filter_sum_matches_python(self, threshold):
        rng = random.Random(threshold)
        values = [rng.randrange(256) for _ in range(4)]
        circuit, inputs, _ = filter_sum_circuit(values, threshold, bits=8)
        out = circuit.evaluate(inputs)
        assert out[-1][0] == sum(v for v in values if v < threshold)

    def test_gkr_over_filter_sum(self):
        values = [10, 200, 50, 180]
        circuit, inputs, stats = filter_sum_circuit(values, 100, bits=8)
        assert stats["relays"] > 0  # the paper's relay-gate overhead
        proof = gkr_prove(circuit, inputs)
        assert gkr_verify(circuit, inputs, proof)


class TestZkSqlSimulator:
    @pytest.fixture(scope="class")
    def planner(self):
        return Planner(generate(64))

    def test_q1_cheaper_than_q5(self, planner):
        sizes = {
            "lineitem": 60_000, "orders": 15_000, "customer": 1_500,
            "part": 2_000, "partsupp": 8_000, "supplier": 100,
            "nation": 25, "region": 5,
        }
        sim = ZkSqlSimulator(sizes)
        q1 = sim.estimate(planner.plan(parse(QUERIES["Q1"])), "Q1")
        q5 = sim.estimate(planner.plan(parse(QUERIES["Q5"])), "Q5")
        assert q1.total_gates < q5.total_gates  # joins dominate
        assert q1.proving_seconds > 0
        assert q5.total_rounds > q1.total_rounds  # more operators

    def test_memory_model_positive(self, planner):
        sim = ZkSqlSimulator({"lineitem": 60_000, "orders": 15_000,
                              "customer": 1_500})
        est = sim.estimate(planner.plan(parse(QUERIES["Q1"])), "Q1")
        assert est.memory_bytes > 0


class TestCalibration:
    def test_circuit_rows_match_paper_table2(self):
        # 60k lineitem needs 2^17 rows; 240k needs 2^19 > paper's 2^18
        # (the paper packs tighter; same order of magnitude).
        assert circuit_rows_for_scale(60_000) == 1 << 17
        assert circuit_rows_for_scale(240_000) >= 1 << 18

    def test_anchor_reproduces_q1(self):
        cal = PaperCalibration.from_q1(q1_work=500.0)
        assert cal.proving_seconds(500.0, 60_000) == pytest.approx(
            PAPER["fig10_q1_seconds"][60_000]
        )
        assert cal.memory_gb(500.0, 60_000) == pytest.approx(1.53)

    def test_estimates_scale_linearly(self):
        cal = PaperCalibration.from_q1(q1_work=500.0)
        t60 = cal.proving_seconds(500.0, 60_000)
        t240 = cal.proving_seconds(500.0, 240_000)
        # Paper's Q1 ratio is 683/180 = 3.79 (super-base-linear).
        assert 2.5 < t240 / t60 < 5.5
