"""Malicious-prover soundness: wire round-trips and the tamper harness.

The proving-system tests show honest proofs verify; this suite attacks
the byte boundary.  Every proof field and every byte-mutation class
must be rejected, the h-chunk bound and scalar canonicality each have
a dedicated regression (they pass trivially on code without the fix),
and a small TPC-H query exercises the same sweep end-to-end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import SCALAR_FIELD
from repro.commit import setup
from repro.commit.ipa import IpaProof
from repro.config import ProverConfig
from repro.plonkish import Assignment, ConstraintSystem
from repro.proving import create_proof, keygen, verify_proof
from repro.proving.keygen import finalize_fixed
from repro.proving.proof import Proof, WIRE_MAGIC
from repro.soundness import (
    ProverFaults,
    byte_mutations,
    check_tampered_aggregate,
    check_tampered_bytes,
    field_mutators,
    run_aggregate_tamper_suite,
    run_tamper_suite,
)
from repro.wire import WireFormatError

F = SCALAR_FIELD
K = 5


def build_circuit():
    """The paper's Example 2.1 pipeline f(x,y,z) = 3*(x+y)*z with a
    4-bit range lookup and copy constraints (mirrors test_proving)."""
    cs = ConstraintSystem()
    q_add = cs.selector("q_add")
    q_mul = cs.selector("q_mul")
    q_range = cs.selector("q_range")
    q_out = cs.selector("q_out")
    table = cs.fixed_column("range_table")
    a = cs.advice_column("a")
    b = cs.advice_column("b")
    c = cs.advice_column("c")
    out = cs.instance_column("out")
    cs.create_gate("add", [q_add.cur() * (a.cur() + b.cur() - c.cur())])
    cs.create_gate("mul", [q_mul.cur() * (a.cur() * b.cur() - c.cur())])
    cs.create_gate("out", [q_out.cur() * (c.cur() - out.cur())])
    cs.add_lookup("range16", [q_range.cur() * a.cur()], [table.cur()])
    cs.copy(c, 0, b, 1)
    cs.copy(c, 1, b, 2)
    return cs, dict(
        q_add=q_add, q_mul=q_mul, q_range=q_range, q_out=q_out,
        table=table, a=a, b=b, c=c, out=out,
    )


def assign_circuit(cs, cols, x=7, y=11, z=13):
    asg = Assignment(cs, F, K)
    asg.assign_column(cols["table"], list(range(16)))
    asg.assign(cols["q_add"], 0, 1)
    asg.assign(cols["a"], 0, x)
    asg.assign(cols["b"], 0, y)
    asg.assign(cols["c"], 0, x + y)
    asg.assign(cols["q_range"], 0, 1)
    asg.assign(cols["q_mul"], 1, 1)
    asg.assign(cols["a"], 1, z)
    asg.assign(cols["b"], 1, x + y)
    asg.assign(cols["c"], 1, (x + y) * z)
    asg.assign(cols["q_mul"], 2, 1)
    asg.assign(cols["a"], 2, 3)
    asg.assign(cols["b"], 2, (x + y) * z)
    result = 3 * (x + y) * z
    asg.assign(cols["c"], 2, result)
    asg.assign(cols["q_out"], 2, 1)
    asg.assign(cols["out"], 2, result)
    return asg, result


@pytest.fixture(scope="module")
def params():
    return setup(K)


@pytest.fixture(scope="module")
def proven(params):
    """One honest (pk, asg, proof, instance) shared by read-only tests."""
    cs, cols = build_circuit()
    asg, _ = assign_circuit(cs, cols)
    pk = keygen(params, cs, F, K)
    finalize_fixed(pk, asg)
    proof = create_proof(pk, asg)
    instance = [asg.instance_values(cols["out"])[: asg.usable_rows]]
    assert verify_proof(pk.vk, proof, instance)
    return pk, asg, proof, instance


class TestRoundTrip:
    def test_from_bytes_inverts_to_bytes(self, proven):
        pk, _, proof, _ = proven
        data = proof.to_bytes()
        decoded = Proof.from_bytes(pk.vk, data)
        assert decoded == proof
        assert decoded.to_bytes() == data

    def test_decoded_proof_verifies(self, proven):
        pk, _, proof, instance = proven
        decoded = Proof.from_bytes(pk.vk, proof.to_bytes())
        assert verify_proof(pk.vk, decoded, instance)

    def test_trailing_byte_rejected(self, proven):
        pk, _, proof, _ = proven
        with pytest.raises(WireFormatError, match="trailing"):
            Proof.from_bytes(pk.vk, proof.to_bytes() + b"\x00")

    def test_bad_magic_rejected(self, proven):
        pk, _, proof, _ = proven
        data = proof.to_bytes()
        with pytest.raises(WireFormatError):
            Proof.from_bytes(pk.vk, b"PDB1" + data[len(WIRE_MAGIC):])

    def test_empty_and_tiny_inputs_rejected(self, proven):
        pk, *_ = proven
        for data in (b"", WIRE_MAGIC, WIRE_MAGIC + b"\xff" * 3):
            with pytest.raises(WireFormatError):
                Proof.from_bytes(pk.vk, data)

    @settings(max_examples=5, deadline=None)
    @given(
        x=st.integers(min_value=0, max_value=15),
        y=st.integers(min_value=0, max_value=2**32),
        z=st.integers(min_value=0, max_value=2**32),
    )
    def test_roundtrip_property_over_random_witnesses(self, params, x, y, z):
        """from_bytes(to_bytes(p)) == p for proofs over arbitrary
        witnesses (fresh blinding every example)."""
        cs, cols = build_circuit()
        asg, _ = assign_circuit(cs, cols, x=x, y=y, z=z)
        pk = keygen(params, cs, F, K)
        finalize_fixed(pk, asg)
        proof = create_proof(pk, asg)
        data = proof.to_bytes()
        decoded = Proof.from_bytes(pk.vk, data)
        assert decoded == proof
        assert decoded.to_bytes() == data


class TestFieldLevelTampering:
    def test_every_field_mutation_rejected(self, proven):
        pk, _, proof, instance = proven
        report = run_tamper_suite(
            pk.vk, proof, instance, include_byte_level=False
        )
        assert report.accepted == [], report.summary()
        # The sweep must actually cover the proof: every commitment
        # list, every eval, every IPA round.
        assert report.total > 60, report.summary()
        assert report.rejected_decode > 0  # structural mutations
        assert report.rejected_verify > 0  # value mutations

    def test_mutators_cover_all_proof_fields(self, proven):
        pk, _, proof, _ = proven
        labels = " ".join(label for label, _ in field_mutators(proof))
        for field_name in (
            "advice_commitments", "lookup", "permutation_z_commitments",
            "h_commitments", "advice_evals", "fixed_evals", "sigma_evals",
            "system_evals", "permutation_z_evals", "h_evals", "openings",
        ):
            assert field_name in labels, f"no mutator touches {field_name}"


class TestByteLevelTampering:
    def test_every_byte_mutation_rejected(self, proven):
        pk, _, proof, instance = proven
        report = run_tamper_suite(
            pk.vk, proof, instance, include_field_level=False
        )
        assert report.accepted == [], report.summary()
        assert report.total > 50, report.summary()

    def test_all_mutation_classes_present(self, proven):
        _, _, proof, _ = proven
        labels = [label for label, _ in byte_mutations(proof.to_bytes())]
        for cls in ("bit-flip", "truncate", "extend", "swap", "duplicate"):
            assert any(label.startswith(cls) for label in labels), cls

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_random_bit_flip_rejected(self, proven, data):
        pk, _, proof, instance = proven
        honest = proof.to_bytes()
        pos = data.draw(st.integers(min_value=0, max_value=len(honest) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        flipped = bytearray(honest)
        flipped[pos] ^= 1 << bit
        outcome = check_tampered_bytes(pk.vk, bytes(flipped), instance)
        assert outcome in ("decode", "verify")


class TestQuotientChunkBound:
    """Regression: an honestly-computed proof whose quotient is padded
    with zero chunks beyond the vk-derived bound must be rejected.  On
    code without the bound check the padded proof verifies (the zero
    chunks change nothing algebraically), so both assertions fail."""

    def test_padded_quotient_rejected(self, proven):
        pk, asg, _, instance = proven
        bound = 1 << (pk.vk.extended_k - pk.vk.k)
        padded = create_proof(
            pk, asg, _faults=ProverFaults(extra_h_chunks=bound)
        )
        assert len(padded.h_commitments) > bound  # the fault took effect
        assert not verify_proof(pk.vk, padded, instance)
        with pytest.raises(WireFormatError, match="h commitments"):
            Proof.from_bytes(pk.vk, padded.to_bytes())

    def test_unpadded_control_still_verifies(self, proven):
        pk, asg, _, instance = proven
        proof = create_proof(pk, asg, _faults=ProverFaults(extra_h_chunks=0))
        assert verify_proof(pk.vk, proof, instance)


class TestCanonicalScalars:
    """Regression: scalars must serialize reduced mod p and deserialize
    only if < p.  The old encoder wrote ``s % 2^256`` (two encodings per
    residue) and nothing rejected the non-canonical one."""

    def test_ipa_to_bytes_reduces_mod_p(self, proven):
        _, _, proof, _ = proven
        _, ipa = proof.openings[0]
        p = ipa.rounds[0][0].curve.scalar_field.p
        shifted = IpaProof(rounds=ipa.rounds, a=ipa.a + p, blind=ipa.blind + p)
        assert shifted.to_bytes() == ipa.to_bytes()

    def test_ipa_from_bytes_rejects_noncanonical_scalar(self, params):
        curve = params.curve
        p = curve.scalar_field.p

        def encode(a, blind):
            return (
                (0).to_bytes(4, "little")
                + a.to_bytes(32, "little")
                + blind.to_bytes(32, "little")
            )

        ok = IpaProof.from_bytes(curve, encode(p - 1, 0))
        assert ok.a == p - 1
        with pytest.raises(WireFormatError, match="non-canonical"):
            IpaProof.from_bytes(curve, encode(p, 0))
        with pytest.raises(WireFormatError, match="non-canonical"):
            IpaProof.from_bytes(curve, encode(0, p))

    def test_ipa_from_bytes_roundtrip(self, proven):
        _, _, proof, _ = proven
        _, ipa = proof.openings[0]
        curve = ipa.rounds[0][0].curve
        decoded = IpaProof.from_bytes(curve, ipa.to_bytes(), len(ipa.rounds))
        assert decoded == ipa
        with pytest.raises(WireFormatError):
            IpaProof.from_bytes(curve, ipa.to_bytes() + b"\x00")

    def test_proof_bytes_noncanonical_scalar_rejected(self, proven):
        pk, _, proof, _ = proven
        data = proof.to_bytes()
        # The final 32 bytes are the last opening's blind scalar.
        v = int.from_bytes(data[-32:], "little")
        assert v < F.p
        tampered = data[:-32] + (v + F.p).to_bytes(32, "little")
        with pytest.raises(WireFormatError, match="non-canonical"):
            Proof.from_bytes(pk.vk, tampered)

    def test_proof_object_noncanonical_eval_serializes_canonically(
        self, proven
    ):
        pk, _, proof, _ = proven
        data = proof.to_bytes()
        shifted = Proof.from_bytes(pk.vk, data)
        shifted.sigma_evals[0] += F.p
        assert shifted.to_bytes() == data


TPCH_K = 7
TPCH_SQL = "select count(*) as n from nation where n_regionkey >= 2"


@pytest.fixture(scope="module")
def tpch_proven():
    """A proved query over a small TPC-H instance, plus the verifier
    node itself and its independently-rebuilt vk / instance vectors."""
    from repro.api import PoneglyphDB
    from repro.tpch import generate

    db = generate(64, seed=11)
    config = ProverConfig(
        k=TPCH_K, limb_bits=4, value_bits=24, key_bits=16, use_cache=False
    )
    with PoneglyphDB.open(db, config) as session:
        session.commit()
        response = session.prove(TPCH_SQL)
        report = session.verify(response)
        assert report.accepted, report.reason
        verifier = session.verifier()
        compiled, vk = verifier.rebuild_verifying_key(
            response.sql, len(response.result_encoded)
        )
        instance = compiled.instance_vectors(response.result_encoded)
        return vk, response, instance, verifier


class TestTpchSoundness:
    def test_wire_roundtrip(self, tpch_proven):
        vk, response, _, _ = tpch_proven
        decoded = Proof.from_bytes(vk, response.wire_bytes())
        assert decoded == response.proof
        assert decoded.to_bytes() == response.wire_bytes()

    def test_sampled_byte_mutations_rejected(self, tpch_proven):
        vk, response, instance, _ = tpch_proven
        proof = Proof.from_bytes(vk, response.wire_bytes())
        report = run_tamper_suite(
            vk,
            proof,
            instance,
            include_field_level=False,
            stride=max(1, len(response.wire_bytes()) // 12),
        )
        assert report.accepted == [], report.summary()


class TestBatchSoundness:
    """``batch_verify`` must accept zero tampered proofs: deferring the
    base-folding MSMs into a shared accumulator is an optimization, not
    a relaxation -- a batch containing any forgery is rejected and the
    rejection is attributed to the tampered entry."""

    def _tampered_bytes(self, response, pos):
        import copy

        forged = copy.deepcopy(response)
        flipped = bytearray(forged.proof_bytes)
        flipped[pos % len(flipped)] ^= 0x01
        forged.proof_bytes = bytes(flipped)
        return forged

    def test_honest_batch_accepted(self, tpch_proven):
        _, response, _, verifier = tpch_proven
        report = verifier.batch_verify([response, response, response])
        assert report.accepted, report.reason
        assert report.proofs == 3
        assert report.deferred_openings >= 3

    def test_tampered_wire_bytes_reject_batch(self, tpch_proven):
        _, response, _, verifier = tpch_proven
        # Flip one bit near the end of the wire encoding: the final
        # scalars decode fine but the proof must not verify.
        forged = self._tampered_bytes(response, len(response.proof_bytes) - 40)
        report = verifier.batch_verify([response, forged, response])
        assert not report.accepted
        assert [rep.accepted for rep in report.reports] == [True, False, True]

    def test_forged_result_rejects_batch_with_attribution(self, tpch_proven):
        import copy

        _, response, _, verifier = tpch_proven
        forged = copy.deepcopy(response)
        forged.result_encoded[0][0] += 1
        report = verifier.batch_verify([forged, response])
        assert not report.accepted
        assert not report.reports[0].accepted
        assert report.reports[1].accepted

    def test_empty_batch_is_vacuously_accepted(self, tpch_proven):
        *_, verifier = tpch_proven
        report = verifier.batch_verify([])
        assert report.accepted and report.proofs == 0


class TestAggregateSoundness:
    """The ``PDBA`` aggregate envelope must accept zero tampered
    mutations, mirroring :class:`TestBatchSoundness`: the transportable
    aggregated claim is an optimization over per-proof verification,
    not a relaxation."""

    @pytest.fixture(scope="class")
    def tpch_aggregate(self, tpch_proven):
        from repro.proving.aggregate import aggregate

        _, response, _, verifier = tpch_proven
        agg = aggregate([response, response], verifier.params)
        return verifier, agg, agg.to_bytes()

    def test_honest_aggregate_accepted(self, tpch_aggregate):
        verifier, _, data = tpch_aggregate
        assert check_tampered_aggregate(verifier, data) == "accepted"
        report = verifier.verify_aggregate(data)
        assert report.accepted and report.proofs == 2

    def test_sampled_byte_mutations_rejected(self, tpch_aggregate):
        verifier, _, data = tpch_aggregate
        report = run_aggregate_tamper_suite(
            verifier, data, stride=max(1, len(data) // 6)
        )
        assert report.accepted == [], report.summary()
        # Both rejection surfaces were actually exercised: the strict
        # wire gate and the cryptographic fold.
        assert report.rejected_decode > 0
        assert report.rejected_verify > 0

    def test_one_tampered_proof_inside_batch_attributed(
        self, tpch_proven, tpch_aggregate
    ):
        import copy

        from repro.proving.aggregate import aggregate

        _, response, _, verifier = tpch_proven
        forged = copy.deepcopy(response)
        flipped = bytearray(forged.proof_bytes)
        flipped[len(flipped) - 40] ^= 0x01
        forged.proof_bytes = bytes(flipped)
        agg = aggregate([response, forged, response], verifier.params)
        report = verifier.verify_aggregate(agg.to_bytes())
        assert not report.accepted
        assert [rep.accepted for rep in report.reports] == [True, False, True]
