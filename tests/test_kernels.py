"""Kernel fast-path equivalence: every optimized kernel must produce
exactly what the reference path produces.

The kernel layer (batch-affine Pippenger, GLV splitting, fixed-base
tables, cached NTT plans) claims *bit-identical* results -- same group
elements, same serialized proofs -- so these tests compare against the
reference implementations directly, including the adversarial inputs
(duplicate points, inverse pairs, zero scalars, identity points) where
affine arithmetic has exceptional cases.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels, parallel
from repro.algebra import SCALAR_FIELD
from repro.algebra.domain import EvaluationDomain, fft_in_place
from repro.algebra.fft_plan import NttPlan, ntt_in_place, plan_for
from repro.commit.ipa import commit_polynomial, commit_polynomials
from repro.commit.pedersen import pedersen_commit
from repro.ecc import PALLAS, VESTA
from repro.ecc import fixed_base, glv
from repro.ecc.curve import Point
from repro.ecc.msm import fold_bases, msm, msm_naive

scalars = st.integers(min_value=0, max_value=SCALAR_FIELD.p - 1)


def _points(n, seed=1):
    """A deterministic mix of distinct, duplicate, inverse, and
    identity points."""
    rng = random.Random(seed)
    g = PALLAS.generator
    pts = []
    for i in range(n):
        kind = rng.randrange(8)
        if kind == 0 and pts:
            pts.append(pts[rng.randrange(len(pts))])  # duplicate
        elif kind == 1 and pts:
            pts.append(-pts[rng.randrange(len(pts))])  # inverse pair
        elif kind == 2:
            pts.append(PALLAS.identity())
        else:
            pts.append(g * rng.randrange(1, SCALAR_FIELD.p))
    return pts


class TestBatchAffineMsm:
    @given(st.lists(scalars, min_size=2, max_size=24), st.integers(0, 2**32))
    @settings(max_examples=10, deadline=None)
    def test_matches_naive(self, sc, seed):
        pts = _points(len(sc), seed)
        assert msm(pts, sc) == msm_naive(pts, sc)

    def test_matches_jacobian_reference_at_size(self):
        rng = random.Random(5)
        pts = _points(300, seed=5)
        sc = [rng.randrange(SCALAR_FIELD.p) for _ in pts]
        fast = msm(pts, sc)
        with kernels.fastpath(False):
            ref = msm(pts, sc)
        assert fast == ref

    def test_all_zero_scalars(self):
        pts = _points(16)
        assert msm(pts, [0] * 16).is_identity()

    def test_cancelling_inputs(self):
        g = PALLAS.generator
        pts = [g, -g, g * 3]
        assert msm(pts, [7, 7, 0]).is_identity()


class TestGlv:
    def test_endo_exists_for_pasta(self):
        assert glv.curve_endo(PALLAS) is not None
        assert glv.curve_endo(VESTA) is not None

    def test_endo_is_lambda_mul(self):
        endo = glv.curve_endo(PALLAS)
        p = PALLAS.field.p
        rng = random.Random(11)
        for _ in range(10):
            q = PALLAS.generator * rng.randrange(1, SCALAR_FIELD.p)
            x, y = q.to_affine()
            phi_q = Point(PALLAS, endo.zeta * x % p, y)
            assert q * endo.lam == phi_q

    @given(scalars)
    @settings(max_examples=40, deadline=None)
    def test_decompose_round_trip_and_bounds(self, k):
        endo = glv.curve_endo(PALLAS)
        n = SCALAR_FIELD.p
        k1, k2 = glv.decompose(endo, k)
        assert (k1 + endo.lam * k2) % n == k % n
        # Halves are ~sqrt(n) ~ 128 bits (slack for rounding).
        assert abs(k1).bit_length() <= 130
        assert abs(k2).bit_length() <= 130

    @given(scalars)
    @settings(max_examples=15, deadline=None)
    def test_endo_mul_matches_windowed(self, k):
        endo = glv.curve_endo(PALLAS)
        q = PALLAS.generator * 123457
        with kernels.fastpath(False):
            ref = q * k
        assert glv.endo_mul(q, k % SCALAR_FIELD.p, endo) == ref if k % SCALAR_FIELD.p else True


class TestFixedBase:
    def test_fixed_base_matches_generic(self, params_k6):
        tables = fixed_base.tables_for_params(params_k6)
        rng = random.Random(13)
        bases = list(params_k6.g) + [params_k6.w, params_k6.u]
        sc = [rng.randrange(SCALAR_FIELD.p) for _ in bases]
        fast = fixed_base.fixed_base_msm(tables, sc)
        with kernels.fastpath(False):
            ref = msm(bases, sc)
        assert fast == ref

    def test_subset_indices(self, params_k6):
        tables = fixed_base.tables_for_params(params_k6)
        idx = [3, 0, 17, params_k6.n]  # out-of-order g's plus w
        sc = [5, SCALAR_FIELD.p - 1, 0, 2**200]
        bases = [params_k6.g[3], params_k6.g[0], params_k6.g[17], params_k6.w]
        with kernels.fastpath(False):
            ref = msm(bases, sc)
        assert fixed_base.fixed_base_msm(tables, sc, idx) == ref

    def test_zero_scalars_give_identity(self, params_k6):
        tables = fixed_base.tables_for_params(params_k6)
        assert fixed_base.fixed_base_msm(tables, [0, 0, 0]).is_identity()

    def test_commit_routes_identically(self, params_k6):
        rng = random.Random(17)
        vals = [rng.randrange(SCALAR_FIELD.p) for _ in range(params_k6.n // 2)]
        blind = rng.randrange(SCALAR_FIELD.p)
        fast_p = pedersen_commit(params_k6, vals, blind)
        fast_c = commit_polynomial(params_k6, vals, blind)
        with kernels.fastpath(False):
            ref_p = pedersen_commit(params_k6, vals, blind)
            ref_c = commit_polynomial(params_k6, vals, blind)
        assert fast_p == ref_p
        assert fast_c == ref_c

    def test_fingerprint_distinguishes_truncation(self, params_k6):
        assert params_k6.fingerprint() != params_k6.truncated(5).fingerprint()
        assert params_k6.fingerprint() == params_k6.fingerprint()


class TestFoldBases:
    def test_fold_matches_per_element(self, field):
        rng = random.Random(19)
        m = 48  # above the vectorized threshold
        g_lo = _points(m, seed=19)
        g_hi = _points(m, seed=23)
        u = rng.randrange(1, field.p)
        u_inv = field.inv(u)
        fast = fold_bases(g_lo, g_hi, u_inv, u)
        with kernels.fastpath(False):
            ref = [msm([lo, hi], [u_inv, u]) for lo, hi in zip(g_lo, g_hi)]
        assert fast == ref


class TestNttPlans:
    @given(st.integers(2, 6), st.integers(0, 2**32))
    @settings(max_examples=10, deadline=None)
    def test_plan_matches_reference(self, k, seed):
        field = SCALAR_FIELD
        n = 1 << k
        omega = field.root_of_unity_of_order(n)
        rng = random.Random(seed)
        vec = [rng.randrange(field.p) for _ in range(n)]
        fast = list(vec)
        ntt_in_place(fast, plan_for(n, omega, field.p))
        ref = list(vec)
        with kernels.fastpath(False):
            fft_in_place(ref, omega, field.p)
        assert fast == ref

    def test_domain_round_trip_both_paths(self, field):
        dom = EvaluationDomain(field, 5)
        rng = random.Random(29)
        vec = [rng.randrange(field.p) for _ in range(dom.size)]
        assert dom.ifft(dom.fft(vec)) == vec
        assert dom.coset_ifft(dom.coset_fft(vec, 5), 5) == vec
        with kernels.fastpath(False):
            assert dom.ifft(dom.fft(vec)) == vec
            assert dom.coset_ifft(dom.coset_fft(vec, 5), 5) == vec

    def test_plan_size_validation(self):
        with pytest.raises(ValueError):
            NttPlan(6, 1, 97)
        plan = plan_for(4, SCALAR_FIELD.root_of_unity_of_order(4), SCALAR_FIELD.p)
        with pytest.raises(ValueError):
            ntt_in_place([1, 2], plan)


class TestBackendParity:
    """Serial and parallel execution must be bit-identical with the
    fast path on (window ownership moves across processes, arithmetic
    does not)."""

    def test_msm_parallel_matches_serial(self):
        rng = random.Random(31)
        pts = _points(128, seed=31)
        sc = [rng.randrange(SCALAR_FIELD.p) for _ in pts]
        serial = msm(pts, sc)
        with parallel.parallelism(2):
            par = msm(pts, sc)
        assert serial == par

    def test_batch_commit_parallel_matches_serial(self, params_k6):
        rng = random.Random(37)
        items = [
            (
                [rng.randrange(SCALAR_FIELD.p) for _ in range(params_k6.n)],
                rng.randrange(SCALAR_FIELD.p),
            )
            for _ in range(4)
        ]
        serial = commit_polynomials(params_k6, items)
        with parallel.parallelism(2):
            par = commit_polynomials(params_k6, items)
        assert [p.to_bytes() for p in serial] == [p.to_bytes() for p in par]

    def test_fft_many_parallel_matches_serial(self, field):
        dom = EvaluationDomain(field, 8)
        rng = random.Random(41)
        vecs = [
            [rng.randrange(field.p) for _ in range(dom.size)] for _ in range(4)
        ]
        serial = dom.fft_many(vecs)
        with parallel.parallelism(2):
            par = dom.fft_many(vecs)
        assert serial == par
