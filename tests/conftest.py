"""Shared fixtures.

Cryptographic tests run at deliberately small sizes (k = 4..6): the
protocol logic is size-independent, and pure-Python group arithmetic
makes large instances slow.  Session-scoped fixtures share the
expensive public-parameter generation across tests.
"""

import random

import pytest

from repro.algebra import SCALAR_FIELD
from repro.commit import setup


@pytest.fixture(scope="session")
def field():
    return SCALAR_FIELD


@pytest.fixture(scope="session")
def params_k6():
    """Shared IPA public parameters supporting circuits up to 2^6 rows."""
    return setup(6)


@pytest.fixture(scope="session")
def params_k9():
    """Larger parameters for gate circuits that need a 256-entry u8 table."""
    return setup(9)


@pytest.fixture()
def rng():
    return random.Random(0xC0FFEE)
