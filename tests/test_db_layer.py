"""Database substrate: types, encoding, tables, commitment + audit."""

import datetime

import pytest

from repro.algebra import SCALAR_FIELD as F
from repro.commit import setup
from repro.db import ColumnDef, Database, TableSchema
from repro.db.commitment import audit_commitment, commit_database, padded_column
from repro.db.encoding import Encoder, VALUE_BOUND
from repro.db.types import (
    DATE,
    DECIMAL,
    INT,
    STRING,
    date_to_int,
    decimal_to_int,
    int_to_date,
    int_to_decimal,
)


class TestTypes:
    def test_date_roundtrip(self):
        for iso in ("1992-01-01", "1998-08-02", "2026-07-06"):
            assert int_to_date(date_to_int(iso)).isoformat() == iso

    def test_date_ordering_preserved(self):
        assert date_to_int("1995-03-15") < date_to_int("1995-03-16")

    def test_pre_epoch_rejected(self):
        with pytest.raises(ValueError):
            date_to_int("1969-12-31")

    def test_decimal_roundtrip(self):
        assert decimal_to_int(120.50) == 12050
        assert int_to_decimal(12050) == 120.50
        with pytest.raises(ValueError):
            decimal_to_int(-1.5)


class TestEncoder:
    def test_string_dictionary_is_order_preserving(self):
        enc = Encoder()
        enc.build_dictionary("t.c", ["pear", "apple", "fig"])
        codes = [enc.encode("t.c", STRING, s) for s in ("apple", "fig", "pear")]
        assert codes == sorted(codes)
        assert min(codes) >= 1  # zero reserved for padding
        assert enc.decode("t.c", STRING, codes[0]) == "apple"

    def test_unknown_string_raises(self):
        enc = Encoder()
        enc.build_dictionary("t.c", ["a"])
        with pytest.raises(KeyError):
            enc.encode("t.c", STRING, "zzz")

    def test_literal_outside_dictionary_is_impossible_code(self):
        enc = Encoder()
        enc.build_dictionary("t.c", ["a"])
        assert enc.decode_literal("t.c", "zzz") == VALUE_BOUND - 1

    def test_out_of_range_rejected(self):
        enc = Encoder()
        with pytest.raises(ValueError):
            enc.encode("t.c", INT, 1 << 63)


class TestTable:
    def test_schema_validation(self):
        with pytest.raises(ValueError):
            TableSchema("t", [ColumnDef("a", INT), ColumnDef("a", INT)])
        with pytest.raises(ValueError):
            TableSchema("t", [ColumnDef("a", INT)], primary_key="b")
        with pytest.raises(ValueError):
            TableSchema("t", [ColumnDef("a", INT)],
                        foreign_keys={"x": ("o", "k")})

    def test_row_arity_checked(self):
        db = Database()
        with pytest.raises(ValueError):
            db.create_table(
                TableSchema("t", [ColumnDef("a", INT)]), [(1, 2)]
            )

    def test_row_access(self):
        db = Database()
        t = db.create_table(
            TableSchema("t", [ColumnDef("a", INT), ColumnDef("b", INT)]),
            [(1, 2), (3, 4)],
        )
        assert t.row(1) == (3, 4)
        assert list(t.iter_rows()) == [(1, 2), (3, 4)]
        assert len(t) == 2

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table(TableSchema("t", [ColumnDef("a", INT)]), [(1,)])
        with pytest.raises(ValueError):
            db.create_table(TableSchema("t", [ColumnDef("a", INT)]), [(1,)])


class TestCommitment:
    @pytest.fixture()
    def small_db(self):
        db = Database()
        db.create_table(
            TableSchema("t", [ColumnDef("a", INT), ColumnDef("b", DECIMAL)]),
            [(1, 1.5), (2, 2.5), (3, 3.5)],
        )
        return db

    def test_commit_and_audit(self, small_db, params_k6):
        commitment, secrets = commit_database(small_db, params_k6, 5)
        assert len(commitment.column_commitments) == 2
        assert audit_commitment(small_db, commitment, secrets, params_k6)

    def test_audit_detects_swapped_database(self, small_db, params_k6):
        commitment, secrets = commit_database(small_db, params_k6, 5)
        other = Database()
        other.create_table(
            TableSchema("t", [ColumnDef("a", INT), ColumnDef("b", DECIMAL)]),
            [(9, 1.5), (2, 2.5), (3, 3.5)],  # one cell differs
        )
        assert not audit_commitment(other, commitment, secrets, params_k6)

    def test_commitment_hiding(self, small_db, params_k6):
        c1, _ = commit_database(small_db, params_k6, 5)
        c2, _ = commit_database(small_db, params_k6, 5)
        # Fresh blinding every time: same data, different commitments.
        assert c1.root != c2.root

    def test_padded_column_shape(self):
        tail = [11, 22, 33, 44]
        vec = padded_column([1, 2], 4, tail)
        assert len(vec) == 16
        assert vec[:2] == [1, 2]
        assert vec[-4:] == tail
        with pytest.raises(ValueError):
            padded_column([1] * 14, 4, tail)  # too long for usable rows
        with pytest.raises(ValueError):
            padded_column([1], 4, [1, 2])  # wrong tail length

    def test_oversized_k_rejected(self, small_db, params_k6):
        with pytest.raises(ValueError):
            commit_database(small_db, params_k6, 9)
