"""The telemetry layer: spans, counters, exporters, circuit reports.

Covers the tentpole guarantees: span nesting and exception safety,
thread- and fork-safe counters (serial and parallel runs report the
same totals), the < 2% disabled-overhead budget, JSONL round-trips,
static CircuitReport golden values, and the end-to-end ``report``
attached to proved responses.
"""

import json
import threading

import pytest

from repro import PoneglyphDB, ProverConfig, parallel, telemetry
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import INT, STRING
from repro.plonkish.assignment import ZK_ROWS
from repro.telemetry.circuit import CircuitReport
from repro.telemetry.export import write_trace_spans
from repro.telemetry.selfcheck import (
    EXAMPLE_K,
    EXPECTED_PHASES,
    example_assignment,
    example_circuit,
    run_instrumented_prove,
)


@pytest.fixture()
def tele():
    """The ambient tracer, enabled and clean; prior state restored."""
    previous = telemetry.enable(True)
    telemetry.reset()
    yield telemetry
    telemetry.reset()
    telemetry.enable(previous)


def _pmap_task(n):
    """Module-level so the worker pool can pickle it."""
    with telemetry.span("test.task", n=n):
        telemetry.incr("test.work", n)
    return n * n


class TestSpans:
    def test_nesting_and_attrs(self, tele):
        with tele.span("outer", k=5) as outer:
            with tele.span("inner.a") as a:
                a.set(rows=3)
            with tele.span("inner.b"):
                pass
        assert outer.attrs == {"k": 5}
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert outer.children[0].attrs == {"rows": 3}
        assert all(c.parent_id == outer.span_id for c in outer.children)
        assert outer in tele.get_tracer().roots
        assert [s.name for s in outer.walk()] == ["outer", "inner.a", "inner.b"]
        assert outer.duration >= max(c.duration for c in outer.children)

    def test_exception_marks_error(self, tele):
        with pytest.raises(ValueError):
            with tele.span("outer") as outer:
                with tele.span("inner"):
                    raise ValueError("boom")
        assert outer.status == "error"
        assert outer.attrs["error"] == "ValueError"
        # The inner span was robust-popped and flagged too.
        assert outer.children[0].status == "error"
        assert tele.current_span() is None

    def test_begin_end_imperative(self, tele):
        root = tele.begin_span("prove", k=3)
        child = tele.begin_span("prove.quotient")
        child.end()
        root.end()
        root.end()  # idempotent
        assert [c.name for c in root.children] == ["prove.quotient"]
        assert root.duration >= child.duration

    def test_disabled_span_is_noop_singleton(self):
        previous = telemetry.enable(False)
        try:
            with telemetry.span("anything") as s:
                assert s is telemetry.NOOP_SPAN
            # timed flavour still measures.
            sw = telemetry.begin_span("verify")
            assert isinstance(sw, telemetry.Stopwatch)
            assert sw.end() >= 0.0
            assert telemetry.get_tracer().roots == []
        finally:
            telemetry.enable(previous)

    def test_counters_thread_safe(self, tele):
        def bump():
            for _ in range(1000):
                tele.incr("test.threads")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tele.counters_snapshot()["test.threads"] == 4000


class TestParallelMerge:
    def test_serial_and_parallel_totals_match(self, tele):
        tasks = [(n,) for n in range(1, 7)]
        with parallel.parallelism(0):
            serial = parallel.pmap(_pmap_task, tasks)
        serial_total = tele.counters_snapshot()["test.work"]
        tele.reset()
        with parallel.parallelism(2):
            par = parallel.pmap(_pmap_task, tasks)
        assert par == serial == [n * n for n in range(1, 7)]
        assert tele.counters_snapshot()["test.work"] == serial_total == 21

    def test_point_normalization_is_uncounted(self, tele):
        # to_affine / batch_to_affine run a backend-dependent number of
        # times (worker tasks re-serialize points), so they must not
        # feed field.inversions or serial != parallel totals.
        from repro.ecc.curve import PALLAS, batch_to_affine

        points = [PALLAS.generator * s for s in (2, 3, 5)]
        before = tele.counters_snapshot().get("field.inversions", 0)
        for point in points:
            point.to_affine()
        batch_to_affine(points)
        assert tele.counters_snapshot().get("field.inversions", 0) == before

    def test_worker_spans_merge_with_chunk_tags(self, tele):
        with parallel.parallelism(2):
            with tele.span("parent"):
                parallel.pmap(_pmap_task, [(1,), (2,), (3,)])
        (root,) = tele.get_tracer().roots
        assert root.name == "parent"
        merged = [c for c in root.children if c.name == "test.task"]
        assert len(merged) == 3
        assert sorted(c.attrs["chunk"] for c in merged) == [0, 1, 2]
        assert sorted(c.attrs["n"] for c in merged) == [1, 2, 3]


class TestDisabledOverhead:
    def test_noop_budget_under_two_percent(self, tele):
        """The disabled fast path must cost < 2% of a real prove.

        Measured directly: count every instrumentation event one
        instrumented k=5 prove emits (spans + counter bumps), then time
        that many *disabled* span/incr calls and compare against the
        same prove's disabled wall time.
        """
        root = run_instrumented_prove()
        spans = sum(1 for _ in root.walk())
        bumps = sum(1 for _ in tele.counters_snapshot())
        events = spans + int(
            sum(tele.counters_snapshot().values())
        )
        assert bumps > 0 and spans > 10

        telemetry.enable(False)
        telemetry.reset()
        _, prove_seconds = telemetry.time_call(run_instrumented_prove)

        def burn():
            for _ in range(spans):
                with telemetry.span("noop", k=1):
                    pass
            for _ in range(events):
                telemetry.incr("noop", 1)

        _, overhead_seconds = telemetry.time_call(burn)
        telemetry.enable(True)
        assert overhead_seconds < 0.02 * prove_seconds, (
            f"disabled telemetry cost {overhead_seconds:.4f}s for "
            f"{spans} spans + {events} incrs vs {prove_seconds:.2f}s prove"
        )


class TestExportRoundTrip:
    def test_jsonl_round_trip(self, tele, tmp_path):
        with tele.span("prove", k=5):
            with tele.span("prove.quotient", ext=256):
                tele.incr("fft.calls", 3)
            tele.gauge("proof.bytes", 1234)
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        telemetry.write_trace(first, tele.get_tracer())
        trace = telemetry.read_trace(first)
        assert trace.counters == {"fft.calls": 3}
        assert trace.gauges == {"proof.bytes": 1234}
        (root,) = trace.roots
        assert root.name == "prove" and root.attrs == {"k": 5}
        assert root.children[0].name == "prove.quotient"
        write_trace_spans(second, trace)
        assert first.read_bytes() == second.read_bytes()

    def test_read_rejects_foreign_files(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"type": "meta", "format": "nope"}) + "\n")
        with pytest.raises(ValueError):
            telemetry.read_trace(bad)

    def test_render_tree_and_phases(self, tele):
        root = tele.begin_span("prove")
        tele.begin_span("prove.quotient").end()
        root.end()
        tele.incr("msm.points", 1_000_000)
        tree = telemetry.render_tree(
            [root], tele.counters_snapshot(), tele.gauges_snapshot()
        )
        assert "prove.quotient" in tree and "% of parent" in tree
        assert "1,000,000" in tree
        report = telemetry.phase_report(root, tele.counters_snapshot())
        assert set(report["phases"]) == {"quotient"}
        assert 0.0 < report["phase_coverage"] <= 1.0
        rendered = telemetry.render_phases(report)
        assert "quotient" in rendered and "phase coverage" in rendered

    def test_non_string_attrs_round_trip(self, tele, tmp_path):
        """Spans routinely carry ints, floats, bools, tuples, enums,
        and paths; the JSONL writer must keep JSON scalars typed and
        stringify the rest instead of crashing."""
        from enum import Enum
        from pathlib import Path

        class Lane(Enum):
            HIGH = 0

        with tele.span(
            "prove",
            k=5,
            ratio=0.5,
            warm=True,
            nothing=None,
            sizes=(1, 2, 3),
            nested={"a": Path("/tmp/x"), "b": 2},
            lane=Lane.HIGH,
        ):
            pass
        path = tmp_path / "attrs.jsonl"
        telemetry.write_trace(path, tele.get_tracer())
        (root,) = telemetry.read_trace(path).roots
        assert root.attrs["k"] == 5
        assert root.attrs["ratio"] == 0.5
        assert root.attrs["warm"] is True
        assert root.attrs["nothing"] is None
        assert root.attrs["sizes"] == [1, 2, 3]
        assert root.attrs["nested"] == {"a": "/tmp/x", "b": 2}
        assert root.attrs["lane"] == "Lane.HIGH"
        # And a second write of the parsed trace is byte-stable.
        second = tmp_path / "attrs2.jsonl"
        write_trace_spans(second, telemetry.read_trace(path))
        assert path.read_bytes() == second.read_bytes()

    def test_render_empty_trace(self, tele):
        assert telemetry.render_tree([]) == ""
        assert telemetry.render_tree([], {}, {}) == ""

    def test_single_span_render_and_phase_report(self, tele):
        root = tele.begin_span("prove")
        root.end()
        tree = telemetry.render_tree([root])
        assert "prove" in tree and "% of parent" not in tree
        report = telemetry.phase_report(root)
        assert report["phases"] == {}
        assert report["phase_coverage"] == 0.0
        assert "phase coverage" in telemetry.render_phases(report)

    def test_zero_duration_root_phase_report(self, tele):
        root = tele.begin_span("prove")
        root.end()
        root.duration = 0.0
        report = telemetry.phase_report(root)
        assert report["phase_coverage"] == 0.0  # no division by zero
        telemetry.render_phases(report)  # must not raise either


class TestObserversAndContext:
    def test_raising_observer_dropped_not_fatal(self, tele):
        """A broken observer must not fail the traced work: it is
        removed after its first raise and counted."""
        seen = []

        def good(span, event):
            seen.append((span.name, event))

        def bad(span, event):
            raise RuntimeError("observer bug")

        telemetry.add_span_observer(good)
        telemetry.add_span_observer(bad)
        try:
            with tele.span("first"):
                pass
            with tele.span("second"):
                pass
        finally:
            telemetry.remove_span_observer(good)
            telemetry.remove_span_observer(bad)
        assert ("first", "begin") in seen and ("second", "end") in seen
        dropped = tele.counters_snapshot()["telemetry.observers_dropped"]
        assert dropped == 1  # dropped at its first raise, not per span

    def test_observer_list_mutation_during_dispatch(self, tele):
        """An observer that unregisters itself mid-dispatch must not
        break iteration over the observer list."""
        calls = []

        def self_removing(span, event):
            calls.append(event)
            telemetry.remove_span_observer(self_removing)

        telemetry.add_span_observer(self_removing)
        try:
            with tele.span("outer"):
                with tele.span("inner"):
                    pass
        finally:
            telemetry.remove_span_observer(self_removing)
        assert calls == ["begin"]

    def test_job_scope_stamps_root_spans_only(self, tele):
        with tele.job_scope(job_id="job-7", trace_id="trace-abc"):
            assert tele.current_context() == {
                "job_id": "job-7", "trace_id": "trace-abc",
            }
            with tele.span("prove") as root:
                with tele.span("prove.quotient") as child:
                    pass
        assert tele.current_context() == {}
        assert root.attrs["job_id"] == "job-7"
        assert root.attrs["trace_id"] == "trace-abc"
        assert "job_id" not in child.attrs  # children inherit via root

    def test_explicit_attrs_beat_context(self, tele):
        with tele.job_scope(job_id="from-context"):
            with tele.span("prove", job_id="explicit") as root:
                pass
        assert root.attrs["job_id"] == "explicit"

    def test_context_propagates_to_fork_workers(self, tele):
        """Root spans captured in fork-pool workers carry the parent's
        job context after the merge."""
        with parallel.parallelism(2):
            with tele.job_scope(job_id="job-42"):
                with tele.span("parent"):
                    parallel.pmap(_pmap_task, [(1,), (2,)])
        (root,) = tele.get_tracer().roots
        assert root.attrs["job_id"] == "job-42"
        merged = [c for c in root.children if c.name == "test.task"]
        assert len(merged) == 2
        assert all(c.attrs["job_id"] == "job-42" for c in merged)


class TestCircuitReport:
    def test_example_circuit_golden_values(self):
        cs, _ = example_circuit()
        report = CircuitReport.from_constraint_system(cs, EXAMPLE_K)
        assert report.k == EXAMPLE_K and report.rows == 32
        assert report.usable_rows == 32 - ZK_ROWS and report.zk_rows == ZK_ROWS
        assert report.fingerprint == cs.fingerprint()
        assert (report.fixed_columns, report.advice_columns) == (5, 3)
        assert (report.instance_columns, report.equality_columns) == (1, 2)
        assert [g.name for g in report.gates] == ["add", "mul", "out"]
        assert [g.max_degree for g in report.gates] == [2, 3, 2]
        assert report.num_constraints == 3
        assert report.max_gate_degree == 3
        assert report.required_degree == 5  # range16 lookup: 1+1+2+1
        assert report.extended_k == 8  # 5 + bit_length(4)
        (lookup,) = report.lookups
        assert (lookup.name, lookup.width, lookup.degree) == ("range16", 1, 5)
        assert report.copies == 2
        assert report.permutation_grand_products == 1  # ceil(2/3)
        assert report.operator_constraints == {"other": 2, "project": 1}
        # advice 3 + 3*1 lookup + 1 perm product + 8 quotient chunks + 1 IPA
        assert report.estimated_commit_msms() == 16
        assert report.commitment_msm_sizes()["quotient_chunks"] == 8
        assert report.as_dict()["estimated_commit_msms"] == 16
        rendered = report.render()
        assert "range16" in rendered and "constraints by operator" in rendered

    def test_tpch_query_report(self):
        from repro.sql.compiler import QueryCompiler
        from repro.sql.parser import parse
        from repro.sql.planner import Planner
        from repro.tpch.datagen import generate
        from repro.tpch.queries import QUERIES

        db = generate(8)
        plan = Planner(db).plan(parse(QUERIES["Q1"]))
        compiled = QueryCompiler(db, 8, 4, 32, 40).compile(plan)
        report = CircuitReport.from_constraint_system(compiled.cs, 8)
        assert report.rows == 256
        assert report.num_constraints == compiled.cs.num_constraints()
        assert report.required_degree >= report.max_gate_degree + 1
        assert report.extended_k > 8
        # Q1 is aggregation-heavy: the operator decomposition must say so.
        assert report.operator_constraints.get("aggregate", 0) > 0
        assert sum(report.operator_constraints.values()) == report.num_constraints
        assert report.lookups  # range checks from filters/decompositions
        assert report.estimated_commit_msms() > report.advice_columns


class TestInstrumentedProve:
    def test_selfcheck_phases_and_counters(self, tele):
        root = run_instrumented_prove()
        child_names = {c.name for c in root.children}
        assert set(EXPECTED_PHASES) <= child_names
        report = telemetry.phase_report(root, tele.counters_snapshot())
        assert report["phase_coverage"] >= 0.95
        counters = report["counters"]
        for name in ("msm.calls", "msm.points", "fft.calls", "field.inversions"):
            assert counters.get(name, 0) > 0, name

    def test_example_circuit_is_provable_fixture(self):
        # Keep the shared fixture honest independent of telemetry.
        cs, cols = example_circuit()
        asg, result = example_assignment(cs, cols, x=2, y=3, z=4)
        assert result == 60
        assert asg.usable_rows == 32 - ZK_ROWS


class TestSessionReport:
    @pytest.fixture()
    def tiny_db(self):
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [ColumnDef("a", INT), ColumnDef("grp", STRING), ColumnDef("v", INT)],
                primary_key="a",
            ),
            [(1, "x", 10), (2, "y", 20), (3, "x", 30)],
        )
        return db

    def test_prove_report_coverage(self, tiny_db, tmp_path):
        config = ProverConfig(
            k=6, limb_bits=4, value_bits=16, key_bits=16,
            cache_dir=tmp_path / "cache", telemetry=True,
        )
        was_enabled = telemetry.enabled()
        with PoneglyphDB.open(tiny_db, config) as session:
            assert telemetry.enabled()
            response = session.prove("select count(*) as n from t")
            verification = session.verify(response)
        assert telemetry.enabled() == was_enabled  # restored on close
        assert verification.accepted
        assert verification.elapsed_seconds > 0
        report = response.report
        assert report is not None and report["span"] == "prove"
        assert report["phase_coverage"] >= 0.95
        expected = {
            "compile", "witness", "keygen", "commit_advice",
            "lookup_commit", "grand_products", "quotient",
            "evaluations", "multiopen",
        }
        assert expected <= set(report["phases"])
        assert abs(
            sum(report["phases"].values()) - report["total_seconds"]
        ) <= 0.05 * report["total_seconds"]
        assert report["counters"].get("msm.points", 0) > 0
        assert report["gauges"].get("proof.bytes", 0) > 0
        # timing stays populated alongside the report.
        assert response.timing.total > 0

    def test_report_absent_when_disabled(self, tiny_db, tmp_path):
        config = ProverConfig(
            k=6, limb_bits=4, value_bits=16, key_bits=16,
            cache_dir=tmp_path / "cache",
        )
        with PoneglyphDB.open(tiny_db, config) as session:
            response = session.prove("select count(*) as n from t")
            assert session.verify(response).accepted
        assert response.report is None
        assert response.timing.total > 0  # Stopwatch path still measures
