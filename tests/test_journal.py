"""The durable job journal: framing, torn-tail tolerance, corruption
detection, and replay folding.

The property tests pin the WAL's central contract with hypothesis:
for *any* record sequence and *any* crash point inside the final
frame, replay returns exactly the intact prefix -- never an exception,
never a phantom record.  Damage strictly before the final frame, by
contrast, must refuse to replay (:class:`~repro.errors.JournalCorrupt`)
rather than silently recover a wrong prefix.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JournalCorrupt, JournalError
from repro.service.journal import (
    MAGIC,
    JobJournal,
    encode_record,
    read_records,
    replay,
)


def write_journal(path, records):
    frames = b"".join(encode_record(r) for r in records)
    path.write_bytes(MAGIC + frames)
    return frames


RECORDS = [
    {"rec": "submitted", "job": "job-a", "sql": "select 1", "seq": 1,
     "priority": 1, "rng_seed": 7, "max_retries": 2},
    {"rec": "running", "job": "job-a", "worker": "w0"},
    {"rec": "submitted", "job": "job-b", "sql": "select 2", "seq": 2,
     "priority": 0},
    {"rec": "done", "job": "job-a", "digest": "abc123"},
    {"rec": "failed", "job": "job-b", "error": "boom"},
]


class TestFraming:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, RECORDS)
        records, torn = read_records(path)
        assert records == RECORDS and torn == 0

    def test_missing_and_empty_files_read_empty(self, tmp_path):
        assert read_records(tmp_path / "absent") == ([], 0)
        (tmp_path / "empty").write_bytes(b"")
        assert read_records(tmp_path / "empty") == ([], 0)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "j"
        path.write_bytes(b"NOTJRN" + encode_record(RECORDS[0]))
        with pytest.raises(JournalCorrupt):
            read_records(path)

    def test_appender_writes_replayable_frames(self, tmp_path):
        path = tmp_path / "j"
        with JobJournal(path) as journal:
            journal.append("submitted", "job-x", sql="select 1", seq=9)
            journal.append("done", "job-x", digest="d")
            assert journal.appended == 2
        # Reopen appends after the existing records, no second magic.
        with JobJournal(path) as journal:
            journal.append("failed", "job-y", error="late")
        records, torn = read_records(path)
        assert [r["rec"] for r in records] == ["submitted", "done", "failed"]
        assert torn == 0

    def test_append_coerces_non_json_values(self, tmp_path):
        with JobJournal(tmp_path / "j") as journal:
            record = journal.append("submitted", "job-x", weird=object())
        assert isinstance(record["weird"], str)

    def test_unwritable_path_raises_typed_error(self, tmp_path):
        target = tmp_path / "dir-not-file"
        target.mkdir()
        with pytest.raises(JournalError):
            JobJournal(target)


class TestTornTail:
    """A crash mid-append leaves a damaged *final* frame; every such
    journal must replay its intact prefix."""

    @settings(max_examples=60, deadline=None)
    @given(
        n_records=st.integers(min_value=1, max_value=5),
        cut=st.integers(min_value=1, max_value=250),
    )
    def test_truncation_anywhere_keeps_intact_prefix(
        self, tmp_path_factory, n_records, cut
    ):
        path = tmp_path_factory.mktemp("journal") / "j"
        records = RECORDS[:n_records]
        frame_sizes = [len(encode_record(r)) for r in records]
        frames = write_journal(path, records)
        cut = min(cut, len(frames))
        kept = len(frames) - cut
        path.write_bytes(MAGIC + frames[:kept])
        # Exactly the records whose frames fit in the kept bytes
        # survive; everything behind the cut is torn tail, byte for
        # byte.
        expect, consumed = 0, 0
        while (
            expect < n_records and consumed + frame_sizes[expect] <= kept
        ):
            consumed += frame_sizes[expect]
            expect += 1
        got, torn = read_records(path)
        assert got == records[:expect]
        assert torn == kept - consumed

    @settings(max_examples=40, deadline=None)
    @given(partial=st.integers(min_value=1, max_value=11))
    def test_partial_final_frame_tolerated(self, tmp_path_factory, partial):
        path = tmp_path_factory.mktemp("journal") / "j"
        frames = write_journal(path, RECORDS)
        extra = encode_record({"rec": "running", "job": "job-b"})
        cut = min(partial, len(extra) - 1)
        path.write_bytes(MAGIC + frames + extra[:cut])
        got, torn = read_records(path)
        assert got == RECORDS
        assert torn == cut

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_final_frame_bitflip_to_eof_tolerated(
        self, tmp_path_factory, data
    ):
        """Flipping payload bits of the *last* frame is the overwrite-
        in-progress crash signature: replay keeps everything before."""
        path = tmp_path_factory.mktemp("journal") / "j"
        frames = b"".join(encode_record(r) for r in RECORDS[:-1])
        last = encode_record(RECORDS[-1])
        index = data.draw(
            st.integers(min_value=8, max_value=len(last) - 1), label="byte"
        )
        bit = data.draw(st.integers(min_value=0, max_value=7), label="bit")
        damaged = bytearray(last)
        damaged[index] ^= 1 << bit
        path.write_bytes(MAGIC + frames + bytes(damaged))
        got, torn = read_records(path)
        assert got == RECORDS[:-1]
        assert torn == len(last)


class TestCorruption:
    def test_midfile_payload_damage_refuses_replay(self, tmp_path):
        """Payload damage with intact frames *after* it cannot be a
        torn append -- replaying the prefix would silently drop jobs
        the service acknowledged, so it must raise instead."""
        path = tmp_path / "j"
        first = bytearray(encode_record(RECORDS[0]))
        first[-2] ^= 0xFF  # corrupt the first record's payload
        rest = b"".join(encode_record(r) for r in RECORDS[1:])
        path.write_bytes(MAGIC + bytes(first) + rest)
        with pytest.raises(JournalCorrupt) as excinfo:
            read_records(path)
        assert excinfo.value.offset == len(MAGIC)

    def test_undecodable_json_refuses_replay(self, tmp_path):
        import struct
        import zlib

        payload = b"\xff\xfenot json"
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        (tmp_path / "j").write_bytes(MAGIC + frame)
        with pytest.raises(JournalCorrupt):
            read_records(tmp_path / "j")

    def test_non_object_record_refuses_replay(self, tmp_path):
        import struct
        import zlib

        payload = json.dumps([1, 2, 3]).encode()
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        (tmp_path / "j").write_bytes(MAGIC + frame)
        with pytest.raises(JournalCorrupt):
            read_records(tmp_path / "j")

    def test_absurd_length_running_past_eof_reads_as_torn(self, tmp_path):
        import struct

        frame = struct.pack("<II", 1 << 30, 0) + b"\x00" * 64
        good = encode_record(RECORDS[0])
        # A garbage length field always claims more bytes than the file
        # holds here, which is indistinguishable from a torn append:
        # the prefix before it replays, nothing after is trusted.
        (tmp_path / "torn").write_bytes(MAGIC + frame + good)
        got, torn = read_records(tmp_path / "torn")
        assert got == [] and torn > 0

    def test_partial_magic_reads_as_torn_creation(self, tmp_path):
        (tmp_path / "j").write_bytes(MAGIC[:3])
        assert read_records(tmp_path / "j") == ([], 3)


class TestReplayFolding:
    def test_lifecycle_folds_to_final_state(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, RECORDS)
        result = replay(path)
        assert result.records == 5 and result.torn_tail_bytes == 0
        assert result.max_seq == 2
        job_a = result.jobs["job-a"]
        assert job_a.state == "done" and job_a.digest == "abc123"
        assert job_a.sql == "select 1" and job_a.rng_seed == 7
        assert job_a.max_retries == 2
        job_b = result.jobs["job-b"]
        assert job_b.state == "failed" and job_b.error == "boom"
        # done jobs still need replay (their response lived in memory);
        # failed jobs are terminal.
        assert [j.job_id for j in result.pending()] == ["job-a"]
        assert [j.job_id for j in result.terminal()] == ["job-b"]

    def test_retry_and_cancel_records(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, [
            {"rec": "submitted", "job": "j1", "sql": "q", "seq": 4},
            {"rec": "running", "job": "j1", "worker": "w"},
            {"rec": "retry", "job": "j1", "attempt": 1, "error": "died"},
            {"rec": "submitted", "job": "j2", "sql": "q", "seq": 5},
            {"rec": "cancelled", "job": "j2", "error": "client"},
        ])
        result = replay(path)
        assert result.jobs["j1"].state == "retry"
        assert result.jobs["j1"].attempts == 1
        assert not result.jobs["j1"].terminal
        assert result.jobs["j2"].terminal
        assert [j.job_id for j in result.pending()] == ["j1"]

    def test_unknown_records_and_orphan_transitions_skipped(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, [
            {"rec": "future-type", "job": "j1"},
            {"rec": "running", "job": "never-submitted"},
            {"no_rec_key": True},
            {"rec": "submitted", "job": "j2", "sql": "q", "seq": 1},
        ])
        result = replay(path)
        assert list(result.jobs) == ["j2"]
