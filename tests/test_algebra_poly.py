"""Polynomial arithmetic and FFT evaluation domains."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import EvaluationDomain, Polynomial, SCALAR_FIELD

F = SCALAR_FIELD

small_coeffs = st.lists(
    st.integers(min_value=0, max_value=F.p - 1), min_size=0, max_size=12
)


def poly(coeffs):
    return Polynomial(F, coeffs)


class TestPolynomial:
    def test_degree_and_zero(self):
        assert Polynomial.zero(F).degree == -1
        assert Polynomial.zero(F).is_zero()
        assert poly([0, 0, 0]).is_zero()
        assert poly([1, 2]).degree == 1
        assert Polynomial.constant(F, 7).degree == 0
        assert Polynomial.monomial(F, 3).degree == 3

    @given(a=small_coeffs, b=small_coeffs)
    @settings(max_examples=40)
    def test_add_commutes(self, a, b):
        assert poly(a) + poly(b) == poly(b) + poly(a)

    @given(a=small_coeffs, b=small_coeffs)
    @settings(max_examples=40)
    def test_mul_matches_eval(self, a, b):
        x = 987654321
        product = poly(a) * poly(b)
        expected = poly(a).evaluate(x) * poly(b).evaluate(x) % F.p
        assert product.evaluate(x) == expected

    @given(a=small_coeffs, b=small_coeffs)
    @settings(max_examples=30)
    def test_divmod_identity(self, a, b):
        pa, pb = poly(a), poly(b)
        if pb.is_zero():
            with pytest.raises(ZeroDivisionError):
                pa.divmod(pb)
            return
        q, r = pa.divmod(pb)
        assert q * pb + r == pa
        assert r.degree < pb.degree or r.is_zero()

    def test_fft_mul_path(self, rng):
        a = [rng.randrange(F.p) for _ in range(70)]
        b = [rng.randrange(F.p) for _ in range(65)]
        product = poly(a) * poly(b)
        x = rng.randrange(F.p)
        assert product.evaluate(x) == poly(a).evaluate(x) * poly(b).evaluate(x) % F.p

    def test_divide_by_linear(self, rng):
        coeffs = [rng.randrange(F.p) for _ in range(9)]
        root = rng.randrange(F.p)
        pl = poly(coeffs)
        quotient, remainder = pl.divide_by_linear(root)
        assert remainder == pl.evaluate(root)
        # quotient * (X - root) + remainder == pl
        x_minus_root = poly([(-root) % F.p, 1])
        assert quotient * x_minus_root + Polynomial.constant(F, remainder) == pl

    def test_interpolate(self):
        xs = [1, 5, 9, 13]
        ys = [2, 4, 100, 7]
        pl = Polynomial.interpolate(F, xs, ys)
        assert pl.degree <= 3
        for x, y in zip(xs, ys):
            assert pl.evaluate(x) == y

    def test_interpolate_empty(self):
        assert Polynomial.interpolate(F, [], []).is_zero()

    def test_interpolate_length_mismatch(self):
        with pytest.raises(ValueError):
            Polynomial.interpolate(F, [1], [1, 2])

    def test_vanishing(self):
        roots = [3, 7, 11]
        pl = Polynomial.vanishing(F, roots)
        assert pl.degree == 3
        for r in roots:
            assert pl.evaluate(r) == 0
        assert pl.evaluate(4) != 0

    def test_scale(self):
        pl = poly([1, 2, 3]).scale(5)
        assert pl.coeffs == [5, 10, 15]


class TestEvaluationDomain:
    @pytest.mark.parametrize("k", [1, 3, 6])
    def test_fft_roundtrip(self, k, rng):
        domain = EvaluationDomain(F, k)
        coeffs = [rng.randrange(F.p) for _ in range(domain.size)]
        assert domain.ifft(domain.fft(coeffs)) == coeffs

    def test_fft_matches_direct_evaluation(self, rng):
        domain = EvaluationDomain(F, 4)
        coeffs = [rng.randrange(F.p) for _ in range(16)]
        pl = poly(coeffs)
        evals = domain.fft(coeffs)
        for x, expected in zip(domain.elements(), evals):
            assert pl.evaluate(x) == expected

    def test_coset_fft_roundtrip(self, rng):
        domain = EvaluationDomain(F, 5)
        shift = F.multiplicative_generator
        coeffs = [rng.randrange(F.p) for _ in range(32)]
        evals = domain.coset_fft(coeffs, shift)
        assert domain.coset_ifft(evals, shift) == coeffs
        # spot check against direct evaluation on the coset
        pl = poly(coeffs)
        point = shift * domain.omega % F.p
        assert pl.evaluate(point) == evals[1]

    def test_zero_padding(self):
        domain = EvaluationDomain(F, 3)
        evals = domain.fft([5])
        assert evals == [5] * 8  # constant polynomial

    def test_oversized_input_rejected(self):
        domain = EvaluationDomain(F, 2)
        with pytest.raises(ValueError):
            domain.fft([1] * 5)
        with pytest.raises(ValueError):
            domain.ifft([1] * 3)

    def test_vanishing_eval(self):
        domain = EvaluationDomain(F, 3)
        for x in domain.elements():
            assert domain.vanishing_eval(x) == 0
        assert domain.vanishing_eval(F.multiplicative_generator) != 0

    def test_rotated_point(self):
        domain = EvaluationDomain(F, 3)
        x = 12345
        assert domain.rotated_point(x, 1) == x * domain.omega % F.p
        assert domain.rotated_point(domain.rotated_point(x, 1), -1) == x
        assert domain.rotated_point(x, 8) == x  # full cycle

    def test_lagrange_basis(self):
        domain = EvaluationDomain(F, 3)
        elements = domain.elements()
        # Kronecker delta on the domain itself.
        for i in range(8):
            for j in range(8):
                expected = 1 if i == j else 0
                assert domain.lagrange_basis_eval(i, elements[j]) == expected
        # Off-domain: sums to 1 (partition of unity).
        x = 987
        total = sum(domain.lagrange_basis_eval(i, x) for i in range(8)) % F.p
        assert total == 1

    def test_lagrange_basis_evals_batch_matches_scalar(self):
        domain = EvaluationDomain(F, 3)
        # Off-domain point: one batch inversion, same values.
        x = 987
        batch = domain.lagrange_basis_evals(x, 8)
        assert batch == [domain.lagrange_basis_eval(i, x) for i in range(8)]
        # On-domain point: the indicator-vector path.
        elements = domain.elements()
        batch = domain.lagrange_basis_evals(elements[5], 8)
        assert batch == [1 if i == 5 else 0 for i in range(8)]
        # Partial count.
        assert domain.lagrange_basis_evals(x, 3) == batch_prefix(domain, x, 3)


def batch_prefix(domain, x, count):
    return [domain.lagrange_basis_eval(i, x) for i in range(count)]

    def test_domain_exceeding_two_adicity_rejected(self):
        with pytest.raises(ValueError):
            EvaluationDomain(F, 33)
