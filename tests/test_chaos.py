"""The fault-injection harness and real crash recovery.

Three layers, all real crypto (small ``k``):

- the in-process chaos scenarios (worker kills, duplicate pops, torn
  journal tails, cache corruption) from :mod:`repro.service.chaos`,
  each asserting the no-lost / no-double-completion / byte-identity
  invariants;
- the **SIGKILL end-to-end**: a child process opens a journaled
  service, reaches one job mid-prove with two more queued, and is
  killed with signal 9 -- then this process replays its journal and
  must recover all three jobs byte-identically;
- journal-on-close hygiene (a cleanly closed service leaves a journal
  whose replay has nothing pending).
"""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.config import ServiceConfig
from repro.service import JobState, ProvingService, replay
from repro.service.chaos import (
    CHAOS_QUERIES,
    baseline_digests,
    build_session,
    scenario_cache_corruption,
    scenario_crash_recovery,
    scenario_duplicate_pops,
    scenario_worker_kill,
)
from repro.service.scheduler import response_digest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def chaos_env():
    """One committed small-``k`` session plus the synchronous-path
    baseline digests every scenario compares proofs against."""
    session = build_session(k=6)
    expected = baseline_digests(session)
    yield session, expected
    session.close()


class TestChaosScenarios:
    def test_worker_kill_supervisor_recovers(self, chaos_env):
        session, expected = chaos_env
        report = scenario_worker_kill(session, expected, seed=11)
        assert report["kills"] == 2
        assert report["workers_restarted"] >= 2

    def test_duplicate_pops_complete_exactly_once(self, chaos_env):
        session, expected = chaos_env
        report = scenario_duplicate_pops(session, expected, seed=12)
        assert any("dup pop" in event for event in report["events"])

    def test_crash_recovery_with_torn_tail(self, chaos_env, tmp_path):
        session, expected = chaos_env
        report = scenario_crash_recovery(session, expected, 13, tmp_path)
        assert report["recovered_jobs"] == 3
        assert report["torn_tail_bytes"] > 0

    def test_cache_corruption_self_heals(self, tmp_path):
        report = scenario_cache_corruption(14, tmp_path)
        assert report["evicted"] == report["corrupted"] == 4


class TestSigkillRecovery:
    """The acceptance scenario: a real process, really killed."""

    def test_sigkill_mid_prove_recovers_byte_identical(
        self, chaos_env, tmp_path
    ):
        session, expected = chaos_env
        journal_path = tmp_path / "victim.journal"
        child = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service.chaos",
                "--child",
                "--journal",
                str(journal_path),
            ],
            cwd=REPO_ROOT,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PATH": "/usr/bin:/bin",
            },
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # The child prints READY once job 1 is RUNNING on its
            # single worker with jobs 2 and 3 still QUEUED.
            deadline = time.time() + 120
            ready = None
            while time.time() < deadline:
                line = child.stdout.readline()
                if line.startswith("READY"):
                    ready = json.loads(line[len("READY"):])
                    break
                if child.poll() is not None:  # pragma: no cover
                    pytest.fail(
                        f"child exited early: {child.stderr.read()}"
                    )
            assert ready is not None, "child never reported READY"
            assert len(ready["jobs"]) == 3
        finally:
            child.kill()  # SIGKILL: no atexit, no flush, no cleanup
            child.wait(timeout=30)

        # The journal alone must witness the kill-time shape: all three
        # accepted, >=2 still queued, >=1 taken by the worker.
        folded = replay(journal_path)
        states = [folded.jobs[j].state for j in ready["jobs"]]
        assert len(folded.jobs) == 3
        assert sum(1 for s in states if s == "submitted") >= 2
        assert sum(1 for s in states if s in ("running", "done")) >= 1
        assert [j.job_id for j in folded.pending()] == ready["jobs"]

        # Recover in this process and demand byte-identical proofs.
        with ProvingService.open(
            session,
            ServiceConfig(workers=2, supervisor_interval=0.02),
            journal_path=journal_path,
        ) as recovered:
            assert recovered.recovered_jobs == 3
            health = recovered.health()
            assert health["journal"]["recovered_jobs"] == 3
            by_sql = {sql: seed for sql, seed in CHAOS_QUERIES}
            for job_id in ready["jobs"]:
                response = recovered.wait(job_id, timeout=300)
                status = recovered.status(job_id)
                assert status.state == JobState.DONE
                assert status.recovered
                assert response_digest(response) == expected[status.sql]
                assert status.sql in by_sql

        # A second open on the now-completed journal has nothing left
        # to prove ... except that done responses only live in memory,
        # so they are re-proved and re-checked against their digests.
        folded = replay(journal_path)
        assert all(j.state == "done" for j in folded.jobs.values())
        assert all(j.digest == expected[j.sql] for j in folded.jobs.values())


class TestJournalLifecycle:
    def test_clean_close_journals_cancellations(self, chaos_env, tmp_path):
        """A graceful shutdown cancels queued jobs *in the journal
        too*: reopening must not resurrect them."""
        session, _ = chaos_env
        journal_path = tmp_path / "clean.journal"
        service = ProvingService(
            session,
            ServiceConfig(workers=1, supervisor_interval=0.05),
            journal_path=journal_path,
        )
        sql, seed = CHAOS_QUERIES[0]
        first = service.submit(sql, rng_seed=seed)
        service.wait(first, timeout=300)
        # Queue two more and close before a worker can take them.
        pending = [
            service.submit(s, rng_seed=x, priority=2)
            for s, x in CHAOS_QUERIES[1:]
        ]
        service.close()
        folded = replay(journal_path)
        states = {str(j): folded.jobs[str(j)].state for j in pending}
        # Cancelled-at-shutdown jobs are terminal in the journal...
        assert all(s in ("cancelled", "done") for s in states.values())
        # ...so only the done job (response in memory only) replays.
        assert all(
            j.state == "done" for j in folded.pending()
        )
