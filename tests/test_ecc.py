"""Pasta curve group laws, serialization, hash-to-curve, and MSM."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import BASE_FIELD, SCALAR_FIELD
from repro.ecc import PALLAS, VESTA, Point, msm
from repro.ecc.curve import batch_to_affine
from repro.ecc.msm import msm_naive

scalars = st.integers(min_value=0, max_value=SCALAR_FIELD.p - 1)


class TestCurveParameters:
    def test_pallas_vesta_form_a_cycle(self):
        # order(Pallas) = |Fq| and order(Vesta) = |Fp|.
        assert PALLAS.field is BASE_FIELD
        assert PALLAS.scalar_field is SCALAR_FIELD
        assert VESTA.field is SCALAR_FIELD
        assert VESTA.scalar_field is BASE_FIELD

    @pytest.mark.parametrize("curve", [PALLAS, VESTA])
    def test_generator_on_curve_with_correct_order(self, curve):
        g = curve.generator
        assert g.is_on_curve()
        assert (g * curve.scalar_field.p).is_identity()
        assert not (g * 2).is_identity()

    def test_invalid_point_rejected(self):
        with pytest.raises(ValueError):
            PALLAS.point(1, 1)


class TestGroupLaw:
    @given(a=scalars, b=scalars)
    @settings(max_examples=15, deadline=None)
    def test_scalar_mul_is_homomorphic(self, a, b):
        g = PALLAS.generator
        assert g * a + g * b == g * ((a + b) % SCALAR_FIELD.p)

    def test_double_equals_add(self):
        g = PALLAS.generator * 7
        assert g.double() == g + g

    def test_identity_behaviour(self):
        g = PALLAS.generator
        ident = PALLAS.identity()
        assert (g + ident) == g
        assert (ident + g) == g
        assert (g - g).is_identity()
        assert ident.double().is_identity()
        assert (ident * 5).is_identity()
        assert (g * 0).is_identity()

    def test_negation(self):
        g = PALLAS.generator * 13
        assert (g + (-g)).is_identity()
        assert -PALLAS.identity() == PALLAS.identity()

    def test_mixed_curves_rejected(self):
        with pytest.raises(ValueError):
            _ = PALLAS.generator + VESTA.generator

    def test_associativity_sample(self):
        g = PALLAS.generator
        a, b, c = g * 3, g * 1717, g * 99
        assert (a + b) + c == a + (b + c)


class TestSerialization:
    def test_roundtrip(self):
        pt = PALLAS.generator * 424242
        assert Point.from_bytes(PALLAS, pt.to_bytes()) == pt

    def test_identity_roundtrip(self):
        ident = PALLAS.identity()
        assert Point.from_bytes(PALLAS, ident.to_bytes()).is_identity()

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            Point.from_bytes(PALLAS, b"\x00" * 7)

    def test_tampered_encoding_rejected(self):
        data = bytearray((PALLAS.generator * 3).to_bytes())
        data[0] ^= 1
        with pytest.raises(ValueError):
            Point.from_bytes(PALLAS, bytes(data))

    def test_noncanonical_coordinate_rejected(self):
        # x + p is the same residue but a different byte string; the
        # decoder must admit exactly one encoding per point.
        x, y = (PALLAS.generator * 3).to_affine()
        p = PALLAS.field.p
        good = x.to_bytes(32, "little") + y.to_bytes(32, "little")
        assert Point.from_bytes(PALLAS, good) == PALLAS.generator * 3
        for bad in (
            (x + p).to_bytes(32, "little") + y.to_bytes(32, "little"),
            x.to_bytes(32, "little") + (y + p).to_bytes(32, "little"),
        ):
            with pytest.raises(ValueError, match="non-canonical"):
                Point.from_bytes(PALLAS, bad)

    def test_batch_to_affine(self, rng):
        points = [PALLAS.generator * rng.randrange(1, 10**9) for _ in range(9)]
        points.append(PALLAS.identity())
        affine = batch_to_affine(points)
        for pt, xy in zip(points, affine):
            assert pt.to_affine() == xy


class TestHashToCurve:
    def test_points_valid_and_distinct(self):
        seen = set()
        for i in range(8):
            pt = PALLAS.hash_to_curve(b"domain", str(i).encode())
            assert pt.is_on_curve()
            assert not pt.is_identity()
            seen.add(pt.to_affine())
        assert len(seen) == 8

    def test_deterministic(self):
        a = PALLAS.hash_to_curve(b"d", b"m")
        b = PALLAS.hash_to_curve(b"d", b"m")
        assert a == b

    def test_domain_separation(self):
        assert PALLAS.hash_to_curve(b"d1", b"m") != PALLAS.hash_to_curve(b"d2", b"m")


class TestMsm:
    def test_matches_naive(self, rng):
        points = [PALLAS.generator * rng.randrange(1, 1000) for _ in range(40)]
        sc = [rng.randrange(SCALAR_FIELD.p) for _ in range(40)]
        assert msm(points, sc) == msm_naive(points, sc)

    def test_small_sizes(self, rng):
        for size in (1, 2, 3, 5):
            points = [PALLAS.generator * (i + 1) for i in range(size)]
            sc = [rng.randrange(SCALAR_FIELD.p) for _ in range(size)]
            assert msm(points, sc) == msm_naive(points, sc)

    def test_zero_scalars(self):
        points = [PALLAS.generator, PALLAS.generator * 2]
        assert msm(points, [0, 0]).is_identity()

    def test_identity_points_skipped(self):
        points = [PALLAS.identity(), PALLAS.generator]
        assert msm(points, [5, 3]) == PALLAS.generator * 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            msm([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            msm([PALLAS.generator], [1, 2])
