"""Fiat-Shamir transcript determinism and separation properties."""

from repro.algebra import SCALAR_FIELD
from repro.ecc import PALLAS
from repro.transcript import Transcript

F = SCALAR_FIELD


class TestTranscript:
    def test_deterministic_replay(self):
        def run():
            tr = Transcript(b"test")
            tr.absorb_scalar(b"a", 123)
            tr.absorb_point(b"g", PALLAS.generator)
            return tr.challenge_scalar(b"c")

        assert run() == run()

    def test_absorbed_data_changes_challenges(self):
        t1 = Transcript(b"test")
        t1.absorb_scalar(b"a", 1)
        t2 = Transcript(b"test")
        t2.absorb_scalar(b"a", 2)
        assert t1.challenge_scalar(b"c") != t2.challenge_scalar(b"c")

    def test_label_separation(self):
        t1 = Transcript(b"test")
        t1.absorb_scalar(b"a", 1)
        t2 = Transcript(b"test")
        t2.absorb_scalar(b"b", 1)
        assert t1.challenge_scalar(b"c") != t2.challenge_scalar(b"c")

    def test_init_label_separation(self):
        assert (
            Transcript(b"x").challenge_scalar(b"c")
            != Transcript(b"y").challenge_scalar(b"c")
        )

    def test_sequential_challenges_differ(self):
        tr = Transcript(b"test")
        a = tr.challenge_scalar(b"c")
        b = tr.challenge_scalar(b"c")
        assert a != b

    def test_challenge_never_zero_or_one(self):
        tr = Transcript(b"test")
        for value in tr.challenge_scalars(b"c", 50):
            assert value not in (0, 1)

    def test_absorb_resets_challenge_counter(self):
        t1 = Transcript(b"test")
        t1.challenge_scalar(b"c")
        t1.absorb_scalar(b"a", 5)
        c1 = t1.challenge_scalar(b"c")

        t2 = Transcript(b"test")
        t2.challenge_scalar(b"c")
        t2.challenge_scalar(b"c")
        t2.absorb_scalar(b"a", 5)
        c2 = t2.challenge_scalar(b"c")
        # Same absorbed data after different squeeze counts -> challenges
        # depend only on absorbed content and post-absorb counter.
        assert c1 == c2

    def test_scalars_batch_matches_framed_bytes(self):
        # Batch absorption frames the element count, so a prover cannot
        # shift bytes between adjacent elements without changing the
        # transcript.
        t1 = Transcript(b"test")
        t1.absorb_scalars(b"vals", [1, 2, 3])
        t2 = Transcript(b"test")
        t2.absorb_bytes(
            b"vals",
            (3).to_bytes(4, "little")
            + b"".join(F.to_bytes(v) for v in [1, 2, 3]),
        )
        assert t1.challenge_scalar(b"c") == t2.challenge_scalar(b"c")

    def test_scalars_count_framing_separates(self):
        # [1, 2] followed by [3] must differ from [1] followed by [2, 3]:
        # identical concatenated bytes, different framing.
        t1 = Transcript(b"test")
        t1.absorb_scalars(b"vals", [1, 2])
        t1.absorb_scalars(b"vals", [3])
        t2 = Transcript(b"test")
        t2.absorb_scalars(b"vals", [1])
        t2.absorb_scalars(b"vals", [2, 3])
        assert t1.challenge_scalar(b"c") != t2.challenge_scalar(b"c")

    def test_points_batch(self):
        tr = Transcript(b"test")
        tr.absorb_points(b"pts", [PALLAS.generator, PALLAS.generator * 2])
        assert tr.challenge_scalar(b"c") not in (0, 1)

    def test_fork_independent(self):
        parent = Transcript(b"test")
        parent.absorb_scalar(b"a", 1)
        child1 = parent.fork(b"branch")
        child2 = parent.fork(b"branch")
        assert child1.challenge_scalar(b"c") == child2.challenge_scalar(b"c")
        assert child1.challenge_scalar(b"c") != parent.challenge_scalar(b"c")
