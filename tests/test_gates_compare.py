"""Comparison chips: IsZero/EqFlag (Eqs 6-7), AssertLe/Lt, LtFlag
(Design D / Eq 4) -- correctness and cheating-witness rejection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import SCALAR_FIELD as F
from repro.gates import (
    AssertLeChip,
    AssertLtChip,
    EqFlagChip,
    IsZeroChip,
    LtFlagChip,
    RangeTable,
)
from repro.plonkish import Assignment, ConstraintSystem, MockProver

K = 6  # 64 rows; 4-bit table, 2 limbs -> 8-bit values


def _base():
    cs = ConstraintSystem()
    table = RangeTable(cs, bits=4)
    q = cs.selector("q")
    a = cs.advice_column("a")
    b = cs.advice_column("b")
    return cs, table, q, a, b


class TestRangeTable:
    def test_rejects_bad_width(self):
        cs = ConstraintSystem()
        with pytest.raises(ValueError):
            RangeTable(cs, bits=0)
        with pytest.raises(ValueError):
            RangeTable(cs, bits=30)

    def test_rejects_too_small_circuit(self):
        cs = ConstraintSystem()
        table = RangeTable(cs, bits=8)
        cs.advice_column("x")
        asg = Assignment(cs, F, 6)  # 60 usable < 256
        with pytest.raises(ValueError):
            table.assign(asg)


class TestIsZero:
    def test_zero_and_nonzero(self):
        cs, table, q, a, b = _base()
        chip = IsZeroChip(cs, "iz", q.cur(), a.cur())
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, 0)
        assert chip.assign_row(asg, 0, 0) == 1
        asg.assign(q, 1, 1)
        asg.assign(a, 1, 5)
        assert chip.assign_row(asg, 1, 5) == 0
        MockProver(cs, asg, F).assert_satisfied()

    def test_wrong_inverse_hint_caught(self):
        cs, table, q, a, b = _base()
        chip = IsZeroChip(cs, "iz", q.cur(), a.cur())
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, 5)
        # Claim 5 is zero by giving inv = 0 (b = 1).
        asg.assign(chip.inv, 0, 0)
        failures = MockProver(cs, asg, F).verify()
        assert failures and failures[0].kind == "gate"


class TestEqFlag:
    @given(x=st.integers(0, 255), y=st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_matches_python(self, x, y):
        cs, table, q, a, b = _base()
        chip = EqFlagChip(cs, "eq", q.cur(), a.cur(), b.cur())
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, x)
        asg.assign(b, 0, y)
        flag = chip.assign_row(asg, 0, x, y)
        assert flag == (1 if x == y else 0)
        MockProver(cs, asg, F).assert_satisfied()


class TestAssertOrderings:
    def test_le_accepts_and_lt_rejects_equal(self):
        cs, table, q, a, b = _base()
        le = AssertLeChip(cs, "le", q.cur(), a.cur(), b.cur(), table, 2)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, 9)
        asg.assign(b, 0, 9)
        le.assign_row(asg, 0, 9, 9)
        MockProver(cs, asg, F).assert_satisfied()

        with pytest.raises(ValueError):
            le.assign_row(asg, 1, 10, 9)

    def test_lt_strict(self):
        cs, table, q, a, b = _base()
        lt = AssertLtChip(cs, "lt", q.cur(), a.cur(), b.cur(), table, 2)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, 3)
        asg.assign(b, 0, 4)
        lt.assign_row(asg, 0, 3, 4)
        MockProver(cs, asg, F).assert_satisfied()
        with pytest.raises(ValueError):
            lt.assign_row(asg, 1, 4, 4)

    def test_forged_le_witness_fails_lookup(self):
        cs, table, q, a, b = _base()
        AssertLeChip(cs, "le", q.cur(), a.cur(), b.cur(), table, 2)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, 10)
        asg.assign(b, 0, 9)  # violated: 10 > 9
        # Forge limbs for (9 - 10) mod p: a huge value -- the limbs
        # cannot both recompose and stay in the table.
        failures = MockProver(cs, asg, F).verify()
        assert failures  # recomposition gate fails with zero limbs


class TestLtFlag:
    @given(x=st.integers(0, 255), y=st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_flag_matches_python(self, x, y):
        cs, table, q, a, b = _base()
        chip = LtFlagChip(cs, "lt", q.cur(), a.cur(), b.cur(), table, 2)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, x)
        asg.assign(b, 0, y)
        assert chip.assign_row(asg, 0, x, y) == (1 if x < y else 0)
        MockProver(cs, asg, F).assert_satisfied()

    def test_flipped_check_bit_caught(self):
        cs, table, q, a, b = _base()
        chip = LtFlagChip(cs, "lt", q.cur(), a.cur(), b.cur(), table, 2)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, 3)
        asg.assign(b, 0, 7)
        chip.assign_row(asg, 0, 3, 7)
        # The prover lies: claims 3 >= 7.
        asg.assign(chip.check, 0, 0)
        failures = MockProver(cs, asg, F).verify()
        assert failures, "Eq. 4: a wrong check bit must be unprovable"

    def test_non_boolean_check_caught(self):
        cs, table, q, a, b = _base()
        chip = LtFlagChip(cs, "lt", q.cur(), a.cur(), b.cur(), table, 2)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, 3)
        asg.assign(b, 0, 7)
        chip.assign_row(asg, 0, 3, 7)
        asg.assign(chip.check, 0, 2)
        failures = MockProver(cs, asg, F).verify()
        assert any("bool" in f.name for f in failures)

    def test_out_of_range_operand_rejected(self):
        cs, table, q, a, b = _base()
        chip = LtFlagChip(cs, "lt", q.cur(), a.cur(), b.cur(), table, 2)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        with pytest.raises(ValueError):
            chip.assign_row(asg, 0, 1 << 20, 3)
