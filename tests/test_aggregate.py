"""Aggregated proof claims: the PDBA wire format, one-MSM batch
verification with attribution, the epoch audit hook, and the
Accumulator lifecycle regressions (params fingerprint binding,
finalize-consumes semantics, absorb) plus the vk-cache key fix.

Two layers:

- Real-crypto end-to-end over a small TPC-H instance (module-scoped
  fixture, shared with the soundness-style tamper checks): two proved
  queries fold into one ``AggProof``, round-trip through ``PDBA``
  bytes, and verify with one accumulator finalize.
- Pure accumulator state-machine tests over small IPA openings (k=6)
  -- the regression vectors for the three bugfixes in this PR.
"""

import copy

import pytest

from repro import PoneglyphDB, ProverConfig
from repro.algebra import Polynomial, SCALAR_FIELD
from repro.commit import commit_polynomial, open_polynomial, setup
from repro.errors import StateError, WireFormatError
from repro.proving.aggregate import (
    AGG_MAGIC,
    AggEntry,
    AggProof,
    ScanLinkClaim,
    aggregate,
)
from repro.proving.recursion import Accumulator
from repro.system.audit import audit_aggregate
from repro.transcript import Transcript
from repro.wire import SCALAR_BYTES

F = SCALAR_FIELD

TPCH_K = 7
SQL_NATION = "select count(*) as n from nation where n_regionkey >= 2"
SQL_REGION = "select count(*) as n from region"


@pytest.fixture(scope="module")
def agg_run():
    """Two proved TPC-H queries, their aggregate, and its wire bytes."""
    from repro.tpch import generate

    db = generate(64, seed=11)
    config = ProverConfig(
        k=TPCH_K, limb_bits=4, value_bits=24, key_bits=16, use_cache=False
    )
    with PoneglyphDB.open(db, config) as session:
        session.commit()
        responses = [session.prove(SQL_NATION), session.prove(SQL_REGION)]
        agg = session.aggregate(responses)
        return session, responses, agg, agg.to_bytes()


# -- the PDBA wire format ---------------------------------------------------


class TestWireFormat:
    def test_roundtrip(self, agg_run):
        _, _, agg, data = agg_run
        decoded = AggProof.from_bytes(data)
        assert decoded == agg
        assert decoded.to_bytes() == data

    def test_header_and_fingerprint(self, agg_run):
        session, _, agg, data = agg_run
        assert data[:4] == AGG_MAGIC
        assert agg.params_fingerprint == bytes.fromhex(
            session.params.fingerprint()
        )
        assert agg.proofs == 2
        assert agg.size_bytes() == len(data)

    def test_digest_pins_content(self, agg_run):
        _, _, agg, _ = agg_run
        assert len(agg.digest()) == 20
        forged = copy.deepcopy(agg)
        forged.entries[0].result_encoded[0][0] += 1
        assert forged.digest() != agg.digest()

    def test_empty_aggregate_rejected(self, agg_run):
        session, _, agg, _ = agg_run
        with pytest.raises(ValueError, match="zero proofs"):
            aggregate([], session.params)
        with pytest.raises(ValueError, match="empty aggregate"):
            AggProof(agg.params_fingerprint, []).to_bytes()
        # An encoded zero count must die in the strict decoder too.
        forged = data = agg.to_bytes()
        forged = data[:24] + (0).to_bytes(4, "little") + data[28:]
        with pytest.raises(WireFormatError, match="at least one"):
            AggProof.from_bytes(forged)

    def test_bad_magic_rejected(self, agg_run):
        *_, data = agg_run
        with pytest.raises(WireFormatError, match="aggregate header"):
            AggProof.from_bytes(b"PDB2" + data[4:])

    def test_trailing_bytes_rejected(self, agg_run):
        *_, data = agg_run
        with pytest.raises(WireFormatError, match="trailing"):
            AggProof.from_bytes(data + b"\x00")

    def test_noncanonical_scalar_rejected(self, agg_run):
        _, _, agg, _ = agg_run
        # to_bytes reduces mod p (one canonical encoding per residue)...
        shifted = copy.deepcopy(agg)
        shifted.entries[0].scan_links[0].delta += F.p
        assert shifted.to_bytes() == agg.to_bytes()
        # ...and from_bytes rejects any >= p encoding outright.  The
        # first result scalar sits right after the entry's sql blob.
        data = agg.to_bytes()
        sql_len = len(agg.entries[0].sql.encode())
        off = 4 + 20 + 4 + 4 + sql_len + 4 + 4
        value = int.from_bytes(data[off : off + SCALAR_BYTES], "little")
        forged = (
            data[:off]
            + (value + F.p).to_bytes(SCALAR_BYTES, "little")
            + data[off + SCALAR_BYTES :]
        )
        with pytest.raises(WireFormatError, match="non-canonical"):
            AggProof.from_bytes(forged)

    def test_entry_without_proof_header_rejected(self, agg_run):
        _, _, agg, _ = agg_run
        forged = copy.deepcopy(agg)
        forged.entries[1].proof_bytes = b"\x00" * 64
        with pytest.raises(WireFormatError, match="proof header"):
            AggProof.from_bytes(forged.to_bytes())

    def test_ragged_result_rows_unserializable(self, agg_run):
        _, _, agg, _ = agg_run
        forged = copy.deepcopy(agg)
        forged.entries[0].result_encoded.append([1, 2, 3])
        with pytest.raises(ValueError, match="rectangular"):
            forged.to_bytes()


# -- verify_aggregate -------------------------------------------------------


class TestVerifyAggregate:
    def test_accepts_honest_bytes(self, agg_run):
        session, _, _, data = agg_run
        report = session.verify_aggregate(data)
        assert report.accepted, report.reason
        assert report.proofs == 2
        assert all(rep.accepted for rep in report.reports)
        assert report.deferred_openings >= 2
        assert report.aggregate_size_bytes == len(data)

    def test_accepts_decoded_object(self, agg_run):
        session, _, agg, _ = agg_run
        assert session.verify_aggregate(agg).accepted

    def test_matches_batch_verify(self, agg_run):
        session, responses, _, data = agg_run
        assert session.batch_verify(responses).accepted
        assert session.verify_aggregate(data).accepted

    def test_garbage_rejected_at_decode(self, agg_run):
        session, *_ = agg_run
        report = session.verify_aggregate(b"not an aggregate")
        assert not report.accepted
        assert "decode failed" in report.reason

    def test_foreign_fingerprint_rejected(self, agg_run):
        session, _, agg, _ = agg_run
        forged = copy.deepcopy(agg)
        forged.params_fingerprint = bytes(20)
        report = session.verify_aggregate(forged.to_bytes())
        assert not report.accepted
        assert "different public parameters" in report.reason

    def test_tampered_entry_attributed(self, agg_run):
        session, _, agg, _ = agg_run
        # Flip one bit near the end of entry 1's proof: it still
        # decodes, the fold fails, and attribution pins the entry.
        forged = copy.deepcopy(agg)
        flipped = bytearray(forged.entries[1].proof_bytes)
        flipped[-40] ^= 0x01
        forged.entries[1].proof_bytes = bytes(flipped)
        report = session.verify_aggregate(forged.to_bytes())
        assert not report.accepted
        assert [rep.accepted for rep in report.reports] == [True, False]

    def test_forged_result_attributed(self, agg_run):
        session, _, agg, _ = agg_run
        forged = copy.deepcopy(agg)
        forged.entries[0].result_encoded[0][0] += 1
        report = session.verify_aggregate(forged.to_bytes())
        assert not report.accepted
        assert not report.reports[0].accepted
        assert report.reports[1].accepted


# -- the epoch audit hook ---------------------------------------------------


class TestAuditAggregate:
    def test_attests_honest_aggregate(self, agg_run):
        session, _, agg, data = agg_run
        cert = audit_aggregate(session.verifier(), data)
        assert cert.valid, cert.detail
        assert cert.proofs == 2
        assert cert.digest == agg.digest()
        # The facade path agrees.
        assert session.audit_aggregate(agg).valid

    def test_rejects_tampered_aggregate(self, agg_run):
        session, _, agg, _ = agg_run
        forged = copy.deepcopy(agg)
        forged.entries[0].result_encoded[0][0] += 1
        cert = session.audit_aggregate(forged)
        assert not cert.valid
        assert cert.digest != agg.digest()

    def test_rejects_undecodable_bytes(self, agg_run):
        session, *_ = agg_run
        cert = session.audit_aggregate(b"PDBA" + b"\x00" * 3)
        assert not cert.valid
        assert "decode failed" in cert.detail


# -- Accumulator lifecycle regressions (the three satellite bugfixes) -------


def _defer_real_opening(acc, params, value_offset=0):
    """Defer one honestly-opened IPA claim (optionally with a wrong
    claimed value, which survives the structural checks but must fail
    the folded MSM)."""
    coeffs = [3 * i + 1 for i in range(20)]
    blind = F.rand()
    commitment = commit_polynomial(params, coeffs, blind)
    x = F.rand()
    value = (Polynomial(F, coeffs).evaluate(x) + value_offset) % F.p
    tp = Transcript(b"t")
    proof = open_polynomial(params, tp, coeffs, blind, x, F)
    tv = Transcript(b"t")
    return acc.defer_opening(params, tv, commitment, x, value, proof, F)


class TestAccumulatorLifecycle:
    @pytest.fixture(scope="class")
    def params_k6(self):
        return setup(6)

    def test_same_size_different_generators_rejected(self, params_k6):
        # Regression: the old check compared only params.n, so a
        # same-size parameter set with different generators folded into
        # the wrong bases and verified nothing.
        other = setup(6, label=b"other")
        assert other.n == params_k6.n
        assert other.fingerprint() != params_k6.fingerprint()
        acc = Accumulator(params_k6, F)
        with pytest.raises(StateError, match="different public parameters"):
            acc.defer_opening(other, Transcript(b"t"), None, 0, 0, None, F)
        # The mismatch must not have consumed or polluted the state.
        assert acc.deferred_count == 0
        assert _defer_real_opening(acc, params_k6)
        assert acc.finalize()

    def test_finalize_consumes_on_success(self, params_k6):
        # Regression: finalize used to leave _scalars/_residual intact,
        # so a reused accumulator re-folded stale claims.
        acc = Accumulator(params_k6, F)
        assert _defer_real_opening(acc, params_k6)
        assert acc.finalize()
        assert acc.consumed
        with pytest.raises(StateError, match="already consumed"):
            _defer_real_opening(acc, params_k6)
        with pytest.raises(StateError, match="already consumed"):
            acc.finalize()

    def test_finalize_consumes_on_failure(self, params_k6):
        acc = Accumulator(params_k6, F)
        assert _defer_real_opening(acc, params_k6, value_offset=1)
        assert not acc.finalize()
        with pytest.raises(StateError, match="already consumed"):
            acc.finalize()

    def test_empty_finalize_still_consumes(self, params_k6):
        acc = Accumulator(params_k6, F)
        assert acc.finalize()
        with pytest.raises(StateError, match="already consumed"):
            _defer_real_opening(acc, params_k6)

    def test_absorb_merges_and_consumes_source(self, params_k6):
        main = Accumulator(params_k6, F)
        sub = Accumulator(params_k6, F)
        assert _defer_real_opening(main, params_k6)
        assert _defer_real_opening(sub, params_k6)
        main.absorb(sub)
        assert sub.consumed
        assert main.deferred_count == 2
        assert main.finalize()

    def test_absorb_propagates_bad_claims(self, params_k6):
        main = Accumulator(params_k6, F)
        sub = Accumulator(params_k6, F)
        assert _defer_real_opening(main, params_k6)
        assert _defer_real_opening(sub, params_k6, value_offset=1)
        main.absorb(sub)
        assert not main.finalize()

    def test_absorb_rejects_foreign_fingerprint(self, params_k6):
        main = Accumulator(params_k6, F)
        other = Accumulator(setup(6, label=b"other"), F)
        with pytest.raises(StateError, match="different public"):
            main.absorb(other)

    def test_absorb_rejects_consumed_operands(self, params_k6):
        main = Accumulator(params_k6, F)
        spent = Accumulator(params_k6, F)
        assert spent.finalize()
        with pytest.raises(StateError, match="already consumed"):
            main.absorb(spent)
        assert main.finalize()
        with pytest.raises(StateError, match="already consumed"):
            main.absorb(Accumulator(params_k6, F))


class TestVkCacheKey:
    def test_cache_keyed_by_params_fingerprint(self, agg_run):
        # Regression: the memo key was (sql, result_rows) only, so a
        # verifier whose params change across sessions served a vk
        # compiled for the wrong generators.
        session, responses, _, _ = agg_run
        verifier = session.verifier()
        sql, rows = responses[0].sql, len(responses[0].result_encoded)
        _, vk1 = verifier.rebuild_verifying_key(sql, rows)
        _, vk1_again = verifier.rebuild_verifying_key(sql, rows)
        assert vk1_again is vk1  # memoized under the current params
        original = verifier.params
        try:
            verifier.params = setup(original.k, label=b"other")
            _, vk2 = verifier.rebuild_verifying_key(sql, rows)
            # A fresh vk compiled under the new generators -- never the
            # cached one for the old params.
            assert vk2 is not vk1
            assert vk2.fixed_commitments != vk1.fixed_commitments
        finally:
            verifier.params = original
        _, vk3 = verifier.rebuild_verifying_key(sql, rows)
        assert vk3 is vk1  # the old entry is still served for old params
