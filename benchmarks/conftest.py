"""Shared benchmark fixtures.

All benchmarks run real cryptography at the reduced scale defined by
:class:`repro.bench.BenchConfig` and extrapolate to paper scale with
the calibrated cost model (see DESIGN.md, substitutions).

Public parameters, proving keys, and the TPC-H database load through
the on-disk artifact cache, so the second run of any benchmark skips
regeneration (reports print the HIT/MISS trace).  Set
``REPRO_BENCH_WORKERS=N`` to route the crypto through the parallel
backend, ``REPRO_NO_CACHE=1`` to force cold runs.
"""

import pytest

from repro.bench import BenchConfig, bench_cache, bench_params, build_tpch_system


@pytest.fixture(scope="session")
def bench_config():
    return BenchConfig()


@pytest.fixture(scope="session")
def artifact_cache(bench_config):
    return bench_cache(bench_config)


@pytest.fixture(scope="session", name="bench_params")
def bench_params_fixture(bench_config):
    return bench_params(bench_config)


@pytest.fixture(scope="session")
def tpch_system(bench_config, bench_params):
    """A committed TPC-H prover/verifier pair at reduced scale."""
    return build_tpch_system(bench_config, bench_params)
