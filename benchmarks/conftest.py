"""Shared benchmark fixtures.

All benchmarks run real cryptography at the reduced scale defined by
:class:`repro.bench.BenchConfig` and extrapolate to paper scale with
the calibrated cost model (see DESIGN.md, substitutions).
"""

import pytest

from repro.bench import BenchConfig, build_tpch_system
from repro.commit import setup


@pytest.fixture(scope="session")
def bench_config():
    return BenchConfig()


@pytest.fixture(scope="session")
def bench_params(bench_config):
    return setup(bench_config.k)


@pytest.fixture(scope="session")
def tpch_system(bench_config, bench_params):
    """A committed TPC-H prover/verifier pair at reduced scale."""
    return build_tpch_system(bench_config, bench_params)
