"""Figure 10: proving time and memory over increasing database sizes.

Paper (Q1): 180 s / 1.53 GB at 60k rows growing near-linearly to
683 s / 5.12 GB at 240k rows; all six queries scale similarly because
circuit size grows linearly in the inputs and all constraints are
low degree.

We measure the full pipeline (witness + constraint check) at three
reduced scales to confirm the same near-linear growth, and print the
calibrated paper-scale estimates for 60k/120k/240k.
"""

from repro.baselines.cost_models import PAPER, PaperCalibration
from repro.bench.harness import BenchConfig, bench_metadata, measure_query_pipeline
from repro.bench.reporting import Report
from repro.tpch.queries import QUERIES

SCALES = [32, 64, 128]
PAPER_SCALES = [60_000, 120_000, 240_000]


def test_fig10_scalability(benchmark):
    configs = {s: BenchConfig(lineitem_rows=s, k=8 + SCALES.index(s) // 2)
               for s in SCALES}

    def measure_all():
        out = {}
        for s, config in configs.items():
            out[s] = {
                name: measure_query_pipeline(config, name, check=(s == SCALES[0]))
                for name in QUERIES
            }
        return out

    measured = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    # Calibrate on Q1 at the largest reduced scale.
    calibration = PaperCalibration.from_q1(measured[SCALES[-1]]["Q1"].work)

    report = Report("fig10_scalability", "Figure 10: scalability over data size")
    report.line("measured witness+check seconds at reduced scales:")
    rows = []
    for name in QUERIES:
        row = [name]
        for s in SCALES:
            m = measured[s][name]
            row.append(f"{m.witness_seconds + m.mock_seconds:.2f}")
        rows.append(tuple(row))
    report.table(["query"] + [f"{s} rows" for s in SCALES], rows)

    report.line("\npaper-scale proving estimates (seconds):")
    rows = []
    for name in QUERIES:
        work = measured[SCALES[-1]][name].work
        row = [name] + [
            f"{calibration.proving_seconds(work, s):.0f}" for s in PAPER_SCALES
        ]
        rows.append(tuple(row))
    report.table(["query", "60k", "120k", "240k"], rows)
    q1 = measured[SCALES[-1]]["Q1"].work
    report.line(
        f"\npaper anchors (Q1): 60k -> {PAPER['fig10_q1_seconds'][60_000]} s, "
        f"240k -> {PAPER['fig10_q1_seconds'][240_000]} s "
        f"(ratio {PAPER['fig10_q1_seconds'][240_000]/PAPER['fig10_q1_seconds'][60_000]:.2f}, near-linear)"
    )
    report.line("\npaper-scale memory estimates (GB):")
    rows = []
    for name in QUERIES:
        work = measured[SCALES[-1]][name].work
        rows.append(
            tuple(
                [name]
                + [f"{calibration.memory_gb(work, s):.2f}" for s in PAPER_SCALES]
            )
        )
    report.table(["query", "60k", "120k", "240k"], rows)
    report.line(
        f"paper anchors (Q1): 1.53 GB @60k -> 5.12 GB @240k"
    )
    report.emit(metadata=bench_metadata(configs[SCALES[-1]]))

    # Shape: Q1 estimate grows ~linearly across paper scales (x2 rows ->
    # between 1.5x and 2.8x seconds once the fixed base is included).
    q1_60 = calibration.proving_seconds(q1, 60_000)
    q1_240 = calibration.proving_seconds(q1, 240_000)
    assert 2.5 < q1_240 / q1_60 < 5.0
