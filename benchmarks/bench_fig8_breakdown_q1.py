"""Figure 8: proof-generation breakdown for Q1.

Paper: the base step ("circuit without any gates", fixed overhead of
the public-parameter size) takes >50 s; the eight aggregations dominate
the remainder; filter / group-by / order-by add smaller slices.

Here Q1 is proven *for real* at reduced scale and the breakdown comes
straight from the telemetry span tree: the prover runs under a ``prove``
root span whose direct children (compile, witness, keygen, and the
``create_proof`` rounds) are the reported stages, so the table's rows
are guaranteed to account for the measured total (coverage >= 95%).
"""

from repro.bench.harness import bench_metadata, real_prove_query
from repro.bench.reporting import Report

#: phase-report key -> human row label, in pipeline order.
STAGES = [
    ("compile", "compile circuit"),
    ("witness", "witness generation (all gates)"),
    ("keygen", "keygen (fixed + sigma commitments)"),
    ("commit_advice", "commit advice columns"),
    ("lookup_commit", "lookup arguments (range checks/filters)"),
    ("grand_products", "permutation + shuffle products (sort/group-by)"),
    ("quotient", "quotient (gate constraints incl. 8 aggregations)"),
    ("evaluations", "evaluations at x"),
    ("multiopen", "multiopen (IPA)"),
]


def test_fig8_breakdown_q1(bench_config, tpch_system, benchmark):
    prover, verifier = tpch_system
    response, _report = benchmark.pedantic(
        lambda: real_prove_query(bench_config, "Q1", prover, verifier),
        rounds=1,
        iterations=1,
    )
    breakdown = response.report
    assert breakdown is not None, "bench telemetry should be on by default"
    assert breakdown["phase_coverage"] >= 0.95
    phases = breakdown["phases"]
    total = breakdown["total_seconds"] or 1.0

    report = Report("fig8_breakdown_q1", "Figure 8: Q1 proof-generation breakdown")
    report.line(
        f"reduced scale: {bench_config.lineitem_rows} lineitem rows, "
        f"k={bench_config.k}; total prove = {total:.1f}s "
        f"(span coverage {breakdown['phase_coverage']:.0%}); "
        f"proof = {response.proof_size_bytes / 1024:.1f} KB\n"
    )
    report.table(
        ["stage", "seconds", "share"],
        [
            (label, f"{phases.get(key, 0.0):.2f}", f"{phases.get(key, 0.0) / total:.0%}")
            for key, label in STAGES
        ],
    )
    counters = breakdown["counters"]
    report.line(
        f"\ncrypto work: {counters.get('msm.points', 0):,.0f} MSM points in "
        f"{counters.get('msm.calls', 0):,.0f} MSMs, "
        f"{counters.get('fft.calls', 0):,.0f} FFTs, "
        f"{counters.get('field.inversions', 0):,.0f} field inversions."
    )
    report.line(
        "\npaper shape: a fixed base step >50 s (public-parameter bound "
        "FFT/MSM machinery) followed by aggregation-dominated gate work."
    )
    report.emit(metadata=bench_metadata(bench_config, breakdown["counters"]))
    assert total > 0
    # Aggregation-bearing stages (quotient + commitments) dominate the
    # gate work, mirroring the paper's figure.
    gate_work = (
        phases.get("quotient", 0.0)
        + phases.get("commit_advice", 0.0)
        + phases.get("grand_products", 0.0)
    )
    assert gate_work > 0.3 * total
