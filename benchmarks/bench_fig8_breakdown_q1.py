"""Figure 8: proof-generation breakdown for Q1.

Paper: the base step ("circuit without any gates", fixed overhead of
the public-parameter size) takes >50 s; the eight aggregations dominate
the remainder; filter / group-by / order-by add smaller slices.

Here Q1 is proven *for real* at reduced scale with the prover's stage
instrumentation; the same stages are reported.
"""

from repro.bench.harness import real_prove_query
from repro.bench.reporting import Report


def test_fig8_breakdown_q1(bench_config, tpch_system, benchmark):
    prover, verifier = tpch_system
    response, _report = benchmark.pedantic(
        lambda: real_prove_query(bench_config, "Q1", prover, verifier),
        rounds=1,
        iterations=1,
    )
    timing = response.timing
    report = Report("fig8_breakdown_q1", "Figure 8: Q1 proof-generation breakdown")
    report.line(
        f"reduced scale: {bench_config.lineitem_rows} lineitem rows, "
        f"k={bench_config.k}; total prove = {timing.total:.1f}s; "
        f"proof = {response.proof_size_bytes / 1024:.1f} KB\n"
    )
    stages = [
        ("compile circuit", timing.extra.get("compile", 0.0)),
        ("witness generation (all gates)", timing.extra.get("witness", 0.0)),
        ("keygen (fixed + sigma commitments)", timing.extra.get("keygen", 0.0)),
        ("commit advice columns", timing.commit_advice),
        ("lookup arguments (range checks/filters)", timing.lookups),
        ("permutation + shuffle products (sort/group-by)", timing.permutations),
        ("quotient (gate constraints incl. 8 aggregations)", timing.quotient),
        ("evaluations at x", timing.evaluations),
        ("multiopen (IPA)", timing.multiopen),
    ]
    total = timing.total or 1.0
    report.table(
        ["stage", "seconds", "share"],
        [(name, f"{sec:.2f}", f"{sec / total:.0%}") for name, sec in stages],
    )
    report.line(
        "\npaper shape: a fixed base step >50 s (public-parameter bound "
        "FFT/MSM machinery) followed by aggregation-dominated gate work."
    )
    report.emit()
    assert timing.total > 0
    # Aggregation-bearing stages (quotient + commitments) dominate the
    # gate work, mirroring the paper's figure.
    gate_work = timing.quotient + timing.commit_advice + timing.permutations
    assert gate_work > 0.3 * total
