"""Table 4: PoneglyphDB vs Libra (GKR): proving time, verification
time, proof size.

Paper (60k rows):

==============  ========  ============  ==========
system / query  prove(s)  verify(s)     proof (KB)
==============  ========  ============  ==========
Libra Q1        812       1.290         435.8
Libra Q3        997       1.212         411.4
Libra Q5        1021      1.227         413.9
Pone Q1         180       0.617         8.6
Pone Q3         161       0.725         24.7
Pone Q5         313       0.739         29.6
==============  ========  ============  ==========

Expected shape: PoneglyphDB wins proving by ~3-6x, verification ~2x,
proof size ~15-50x.

Both systems run for real here, on the same micro-workload (filter a
column against a threshold and sum the survivors -- the comparison +
aggregation pattern that dominates these queries):

- PoneglyphDB: the PLONKish pipeline via ProverNode/VerifierNode;
- Libra: our GKR implementation over the bit-decomposed comparator
  circuit (:mod:`repro.baselines.gkr.sql_circuits`).
"""

import time

from repro.baselines.gkr import gkr_prove, gkr_verify
from repro.baselines.gkr.sql_circuits import filter_sum_circuit
from repro.bench.reporting import Report
from repro.commit import setup
from repro.config import ProverConfig
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import INT
from repro.system import ProverNode, VerifierNode

N_ROWS = 8
THRESHOLD = 120
VALUES = [37, 210, 64, 155, 90, 12, 240, 101]


def _pone_roundtrip():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [ColumnDef("id", INT), ColumnDef("v", INT)],
            primary_key="id",
        ),
        [(i + 1, v) for i, v in enumerate(VALUES)],
    )
    params = setup(7)
    prover = ProverNode(
        db,
        params,
        config=ProverConfig(
            k=7, limb_bits=4, value_bits=16, key_bits=16, use_cache=False
        ),
    )
    commitment = prover.publish_commitment()
    verifier = VerifierNode(params, prover.public_metadata(), commitment)
    t0 = time.perf_counter()
    response = prover.answer(f"select sum(v) as s from t where v < {THRESHOLD}")
    prove_s = time.perf_counter() - t0
    report = verifier.verify(response)
    assert report.accepted, report.reason
    expected = sum(v for v in VALUES if v < THRESHOLD)
    assert response.result[0][0] == expected
    return prove_s, report.elapsed_seconds, response.proof_size_bytes


def _libra_roundtrip():
    circuit, inputs, _stats = filter_sum_circuit(VALUES, THRESHOLD, bits=8)
    t0 = time.perf_counter()
    proof = gkr_prove(circuit, inputs)
    prove_s = time.perf_counter() - t0
    t1 = time.perf_counter()
    assert gkr_verify(circuit, inputs, proof)
    verify_s = time.perf_counter() - t1
    return prove_s, verify_s, proof.size_bytes()


def test_table4_vs_libra(benchmark):
    pone = benchmark.pedantic(_pone_roundtrip, rounds=1, iterations=1)
    libra = _libra_roundtrip()

    report = Report("table4_vs_libra", "Table 4: PoneglyphDB vs Libra (GKR)")
    report.line(f"micro-workload: filter+sum over {N_ROWS} rows, run for real\n")
    report.table(
        ["system", "prove (s)", "verify (s)", "proof (KB)"],
        [
            ("PoneglyphDB (measured)", f"{pone[0]:.2f}", f"{pone[1]:.3f}",
             f"{pone[2] / 1024:.1f}"),
            ("Libra/GKR (measured)", f"{libra[0]:.2f}", f"{libra[1]:.3f}",
             f"{libra[2] / 1024:.1f}"),
        ],
    )
    report.line("\npaper (60k rows):")
    report.table(
        ["system", "query", "prove (s)", "verify (s)", "proof (KB)"],
        [
            ("Libra", "Q1", 812, 1.290, 435.8),
            ("Libra", "Q3", 997, 1.212, 411.4),
            ("Libra", "Q5", 1021, 1.227, 413.9),
            ("PoneglyphDB", "Q1", 180, 0.617, 8.6),
            ("PoneglyphDB", "Q3", 161, 0.725, 24.7),
            ("PoneglyphDB", "Q5", 313, 0.739, 29.6),
        ],
    )
    size_ratio = libra[2] / pone[2]
    report.line(
        f"\nmeasured proof-size ratio (Libra/Pone) = {size_ratio:.1f}x; "
        "paper's Q1 ratio = 50.7x, Q3 = 16.7x, Q5 = 14.0x"
    )
    report.line(
        "shape check: GKR proofs grow with circuit depth x width "
        "(bit decomposition), PLONKish proofs stay logarithmic."
    )
    report.emit()
    # The headline shape: Libra's proof is larger.
    assert libra[2] > pone[2] * 0.8
