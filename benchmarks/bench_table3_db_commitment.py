"""Table 3: database commitment time over increasing data sizes.

Paper: 60k rows -> 2.89 s, 120k -> 5.53 s, 240k -> 10.94 s (near-linear
in database size; committed once, reused for every query).

We commit the full 8-table TPC-H database at three reduced scales and
check the same near-linear shape, then extrapolate per-row cost to the
paper's scales.
"""

from repro.bench import (
    BenchConfig,
    bench_cache,
    bench_metadata,
    perf_summary_lines,
    timed,
)
from repro.bench.reporting import Report
from repro.commit.params import cached_setup
from repro.db.commitment import commit_database
from repro.tpch.datagen import generate_cached


def _k_for(total_rows: int) -> int:
    return max(7, (total_rows - 1).bit_length() + 1)


def test_table3_db_commitment(benchmark):
    config = BenchConfig()
    cache = bench_cache(config)
    scales = [32, 64, 128]
    # The datasets and parameters are deterministic artifacts: the
    # second run of this bench loads all of them from the cache.
    dbs = {s: generate_cached(s, cache=cache)[0] for s in scales}
    ks = {s: _k_for(max(len(t) for t in dbs[s].tables.values())) for s in scales}
    params, _ = cached_setup(cache, max(ks.values()))

    def commit_small():
        return commit_database(dbs[scales[0]], params, ks[scales[0]])

    benchmark.pedantic(commit_small, rounds=1, iterations=1)

    measured = {}
    for s in scales:
        _, measured[s] = timed(
            lambda s=s: commit_database(dbs[s], params, ks[s])
        )

    paper = {60_000: 2.89, 120_000: 5.53, 240_000: 10.94}
    # Per-committed-cell cost from the largest measured run.
    db = dbs[scales[-1]]
    cells = sum(
        len(t) * len(t.schema.columns) for t in db.tables.values()
    )
    per_cell = measured[scales[-1]] / cells

    report = Report("table3_db_commitment", "Table 3: database commitment time")
    rows = [
        (f"{s} lineitem", f"{measured[s]:.2f}", "-", "measured") for s in scales
    ]
    for lineitem, paper_s in paper.items():
        est_cells = cells * lineitem / scales[-1]
        rows.append(
            (f"{lineitem:,} lineitem", f"{per_cell * est_cells:.0f}",
             paper_s, "extrapolated")
        )
    report.table(["database size", "this repo (s)", "paper (s)", "kind"], rows)
    doubling = measured[scales[2]] / measured[scales[1]]
    report.line(
        f"\nmeasured doubling ratio = {doubling:.2f} "
        "(paper: 5.53/2.89 = 1.91, 10.94/5.53 = 1.98 -- near-linear)"
    )
    for line in perf_summary_lines(config, cache):
        report.line(line)
    report.emit(metadata=bench_metadata(config))
    assert 1.3 < doubling < 3.2
