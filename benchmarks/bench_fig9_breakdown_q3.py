"""Figure 9: proof-generation breakdown for Q3.

Paper: Q3 applies three filters, two joins, a group-by, an order-by and
an aggregation; the filters and joins dominate (record-by-record
condition checks and key alignment).  Same method as Figure 8: the
stage table is read off the telemetry span tree of the real prove.
"""

from repro.bench.harness import bench_metadata, real_prove_query
from repro.bench.reporting import Report

STAGES = [
    ("compile", "compile circuit"),
    ("witness", "witness generation"),
    ("keygen", "keygen"),
    ("commit_advice", "commit advice columns"),
    ("lookup_commit", "lookup arguments (3 filters + join membership)"),
    ("grand_products", "permutation + shuffle products (joins/sort)"),
    ("quotient", "quotient (gates)"),
    ("evaluations", "evaluations at x"),
    ("multiopen", "multiopen (IPA)"),
]


def test_fig9_breakdown_q3(bench_config, tpch_system, benchmark):
    prover, verifier = tpch_system
    response, _report = benchmark.pedantic(
        lambda: real_prove_query(bench_config, "Q3", prover, verifier),
        rounds=1,
        iterations=1,
    )
    breakdown = response.report
    assert breakdown is not None, "bench telemetry should be on by default"
    assert breakdown["phase_coverage"] >= 0.95
    phases = breakdown["phases"]
    total = breakdown["total_seconds"] or 1.0

    report = Report("fig9_breakdown_q3", "Figure 9: Q3 proof-generation breakdown")
    report.line(
        f"reduced scale: {bench_config.lineitem_rows} lineitem rows, "
        f"k={bench_config.k}; total prove = {total:.1f}s "
        f"(span coverage {breakdown['phase_coverage']:.0%}); "
        f"proof = {response.proof_size_bytes / 1024:.1f} KB\n"
    )
    report.table(
        ["stage", "seconds", "share"],
        [
            (label, f"{phases.get(key, 0.0):.2f}", f"{phases.get(key, 0.0) / total:.0%}")
            for key, label in STAGES
        ],
    )
    counters = breakdown["counters"]
    report.line(
        f"\ncrypto work: {counters.get('msm.points', 0):,.0f} MSM points in "
        f"{counters.get('msm.calls', 0):,.0f} MSMs, "
        f"{counters.get('fft.calls', 0):,.0f} FFTs, "
        f"{counters.get('lookup.rows', 0):,.0f} lookup rows."
    )
    report.line(
        "\npaper shape: filters and joins dominate Q3's gate work "
        "(per-record comparisons + key alignment)."
    )
    report.emit(metadata=bench_metadata(bench_config, breakdown["counters"]))
    assert total > 0
