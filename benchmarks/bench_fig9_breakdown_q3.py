"""Figure 9: proof-generation breakdown for Q3.

Paper: Q3 applies three filters, two joins, a group-by, an order-by and
an aggregation; the filters and joins dominate (record-by-record
condition checks and key alignment).  Same method as Figure 8.
"""

from repro.bench.harness import real_prove_query
from repro.bench.reporting import Report


def test_fig9_breakdown_q3(bench_config, tpch_system, benchmark):
    prover, verifier = tpch_system
    response, _report = benchmark.pedantic(
        lambda: real_prove_query(bench_config, "Q3", prover, verifier),
        rounds=1,
        iterations=1,
    )
    timing = response.timing
    report = Report("fig9_breakdown_q3", "Figure 9: Q3 proof-generation breakdown")
    report.line(
        f"reduced scale: {bench_config.lineitem_rows} lineitem rows, "
        f"k={bench_config.k}; total prove = {timing.total:.1f}s; "
        f"proof = {response.proof_size_bytes / 1024:.1f} KB\n"
    )
    total = timing.total or 1.0
    stages = [
        ("compile circuit", timing.extra.get("compile", 0.0)),
        ("witness generation", timing.extra.get("witness", 0.0)),
        ("keygen", timing.extra.get("keygen", 0.0)),
        ("commit advice columns", timing.commit_advice),
        ("lookup arguments (3 filters + join membership)", timing.lookups),
        ("permutation + shuffle products (joins/sort)", timing.permutations),
        ("quotient (gates)", timing.quotient),
        ("evaluations at x", timing.evaluations),
        ("multiopen (IPA)", timing.multiopen),
    ]
    report.table(
        ["stage", "seconds", "share"],
        [(name, f"{sec:.2f}", f"{sec / total:.0%}") for name, sec in stages],
    )
    report.line(
        "\npaper shape: filters and joins dominate Q3's gate work "
        "(per-record comparisons + key alignment)."
    )
    report.emit()
    assert timing.total > 0
