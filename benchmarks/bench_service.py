"""Proving-service throughput and batch-verification amortization.

Drives the async service end to end at reduced scale: N jobs of a
small TPC-H query are pushed through a worker farm (throughput in
proofs/min, warm-key hit rate), then the resulting batch is verified
twice -- sequentially and through ``batch_verify``'s shared recursion
accumulator -- to measure the per-proof amortization of the deferred
base-folding MSMs.

Runs standalone (``python benchmarks/bench_service.py [--jobs N]
[--workers W] [--check]``) or under pytest.  ``--check`` exits nonzero
unless every proof verifies, the batch accepts, and the batched
per-proof verify time beats sequential -- the CI service-smoke job
gates on it.  Results persist to ``benchmarks/results/service.{txt,json}``.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import PoneglyphDB
from repro.bench.harness import (
    BenchConfig,
    bench_metadata,
    prover_config,
    timed,
    tpch_db,
)
from repro.bench.reporting import Report
from repro.bench import trend
from repro.config import ServiceConfig

#: Small enough to prove N times in a smoke job, real enough to carry
#: scan links, a filter, and an aggregate (same query shape the
#: soundness suite attacks).
SQL = "select count(*) as n from nation where n_regionkey >= 2"


def run_service_bench(jobs: int = 8, workers: int = 2) -> dict:
    config = BenchConfig(k=7, lineitem_rows=64)
    db = tpch_db(config)
    session = PoneglyphDB.open(db, prover_config(config))
    try:
        session.commit()
        with session.serve(ServiceConfig(workers=workers)) as service:
            def push_and_drain():
                ids = [service.submit(SQL) for _ in range(jobs)]
                return [service.wait(job_id, timeout=3600) for job_id in ids]

            responses, wall_s = timed(push_and_drain)
            stats = service.stats()
        warm_hits = sum(
            response.timing.extra.get("keygen_warm_hit", 0.0)
            for response in responses
        )

        verifier = session.verifier()
        # Warm the verifier's memoized vk so both timed paths measure
        # verification, not key generation.
        verifier.verify(responses[0]).require()

        def sequential():
            return [verifier.verify(response) for response in responses]

        seq_reports, seq_s = timed(sequential)
        batch_report, batch_s = timed(lambda: verifier.batch_verify(responses))
    finally:
        session.close()

    return {
        "jobs": jobs,
        "workers": workers,
        "wall_seconds": wall_s,
        "proofs_per_min": 60.0 * jobs / wall_s if wall_s else float("inf"),
        "keygen_warm_hits": int(warm_hits),
        "shed_count": stats["shed_count"],
        "sequential_s": seq_s,
        "sequential_per_proof_s": seq_s / jobs,
        "batch_s": batch_s,
        "batch_per_proof_s": batch_s / jobs,
        "amortization": seq_s / batch_s if batch_s else float("inf"),
        "deferred_openings": batch_report.deferred_openings,
        "finalize_s": batch_report.finalize_seconds,
        "all_sequential_accepted": all(r.accepted for r in seq_reports),
        "batch_accepted": batch_report.accepted,
    }


def emit_report(result: dict) -> Report:
    report = Report("service", "Async proving service: throughput + batch verify")
    report.line(
        f"{result['jobs']} jobs x 1 query shape through {result['workers']} "
        f"workers: {result['wall_seconds']:.1f}s wall = "
        f"{result['proofs_per_min']:.1f} proofs/min "
        f"({result['keygen_warm_hits']} warm-key hits, "
        f"{result['shed_count']} shed)\n"
    )
    report.table(
        ["verification path", "total s", "per-proof s"],
        [
            (
                "sequential",
                f"{result['sequential_s']:.2f}",
                f"{result['sequential_per_proof_s']:.3f}",
            ),
            (
                "batched (shared accumulator)",
                f"{result['batch_s']:.2f}",
                f"{result['batch_per_proof_s']:.3f}",
            ),
        ],
    )
    report.line(
        f"\namortization: {result['amortization']:.2f}x -- "
        f"{result['deferred_openings']} base-folding MSMs folded into one "
        f"{result['finalize_s']:.2f}s finalize."
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless batched per-proof verify beats sequential",
    )
    args = parser.parse_args(argv)

    result = run_service_bench(jobs=args.jobs, workers=args.workers)
    report = emit_report(result)
    config = BenchConfig(k=7, lineitem_rows=64)
    report.emit(
        metadata={**bench_metadata(config), "service": result}
    )

    if not (result["all_sequential_accepted"] and result["batch_accepted"]):
        print("CHECK FAILED: a proof was rejected", file=sys.stderr)
        return 1
    if args.check:
        regressions = trend.track(
            "service",
            {
                "wall_seconds": result["wall_seconds"],
                "proofs_per_min": result["proofs_per_min"],
                "sequential_per_proof_s": result["sequential_per_proof_s"],
                "batch_per_proof_s": result["batch_per_proof_s"],
                "amortization": result["amortization"],
            },
            directions={"proofs_per_min": "higher", "amortization": "higher"},
        )
        if trend.report_regressions(regressions):
            return 1
        if result["batch_per_proof_s"] >= result["sequential_per_proof_s"]:
            print(
                "CHECK FAILED: batched verification "
                f"({result['batch_per_proof_s']:.3f}s/proof) did not beat "
                f"sequential ({result['sequential_per_proof_s']:.3f}s/proof)",
                file=sys.stderr,
            )
            return 1
        print(
            f"CHECK OK: batch verify {result['amortization']:.2f}x faster "
            "per proof than sequential"
        )
    return 0


def test_service_bench_smoke():
    """Pytest entry: a 2-job run must verify both ways."""
    result = run_service_bench(jobs=2, workers=2)
    assert result["all_sequential_accepted"] and result["batch_accepted"]
    assert result["deferred_openings"] >= 2


if __name__ == "__main__":
    sys.exit(main())
