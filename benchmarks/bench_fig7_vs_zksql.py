"""Figure 7: proof-generation time (left) and memory (right) for the
six TPC-H queries, PoneglyphDB vs ZKSQL, at 60k rows.

Paper shape: PoneglyphDB is comparable to interactive ZKSQL overall,
at least ~40% faster on Q1 and Q9 (fewer range-check/sort operations),
and uses 23-60% of ZKSQL's memory.

Method: every query's circuit is compiled and witnessed for real at
reduced scale (exact per-row structure), the calibrated cost model maps
that structure to paper-hardware seconds/GB, and the ZKSQL simulator
prices the same logical plans at 60k-row cardinalities.
"""

from repro.baselines.zksql import ZkSqlSimulator
from repro.bench.harness import (
    bench_metadata,
    calibration_from_q1,
    measure_query_pipeline,
    tpch_db,
)
from repro.bench.reporting import Report
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.tpch.queries import QUERIES

PAPER_PONE = {"Q1": 180, "Q3": 161, "Q5": 313}  # Table 4 anchors
PAPER_SCALE = 60_000


def _paper_scale_sizes() -> dict[str, int]:
    return {
        "lineitem": 60_000,
        "orders": 15_000,
        "customer": 1_500,
        "part": 2_000,
        "partsupp": 8_000,
        "supplier": 100,
        "nation": 25,
        "region": 5,
    }


def test_fig7_vs_zksql(bench_config, benchmark):
    measurements = benchmark.pedantic(
        lambda: [
            measure_query_pipeline(bench_config, name) for name in QUERIES
        ],
        rounds=1,
        iterations=1,
    )
    calibration = calibration_from_q1(bench_config)

    db = tpch_db(bench_config)
    planner = Planner(db)
    simulator = ZkSqlSimulator(_paper_scale_sizes())

    rows = []
    memory_rows = []
    for m in measurements:
        pone_seconds = calibration.proving_seconds(m.work, PAPER_SCALE)
        pone_memory = calibration.memory_gb(m.work, PAPER_SCALE)
        plan = planner.plan(parse(QUERIES[m.query]))
        zk = simulator.estimate(plan, m.query)
        zk_seconds = zk.proving_seconds
        zk_memory = zk.memory_bytes / (1 << 30)
        rows.append(
            (
                m.query,
                f"{m.witness_seconds + m.mock_seconds:.2f}",
                f"{pone_seconds:.0f}",
                f"{zk_seconds:.0f}",
                f"{zk_seconds / pone_seconds:.2f}x",
                PAPER_PONE.get(m.query, "-"),
            )
        )
        memory_rows.append(
            (
                m.query,
                f"{pone_memory:.2f}",
                f"{zk_memory:.2f}",
                f"{pone_memory / zk_memory:.0%}",
            )
        )

    report = Report("fig7_vs_zksql", "Figure 7: PoneglyphDB vs ZKSQL (60k rows)")
    report.line("proving time:")
    report.table(
        [
            "query",
            "measured small-scale (s)",
            "Pone est. @60k (s)",
            "ZKSQL est. @60k (s)",
            "ZKSQL/Pone",
            "paper Pone (s)",
        ],
        rows,
    )
    report.line("\nmemory:")
    report.table(
        ["query", "Pone est. (GB)", "ZKSQL est. (GB)", "Pone/ZKSQL"],
        memory_rows,
    )
    report.line(
        "\npaper shape: Pone ~comparable overall, >=40% faster on Q1/Q9; "
        "Pone memory 23-60% of ZKSQL's."
    )
    report.emit(metadata=bench_metadata(bench_config))

    by_query = {r[0]: r for r in rows}
    # Q1 advantage holds (ZKSQL/Pone ratio > 1.3 on Q1).
    assert float(by_query["Q1"][4].rstrip("x")) > 1.3
    # Memory band: every query's Pone/ZKSQL ratio below 100%.
    for row in memory_rows:
        assert float(row[3].rstrip("%")) < 100
