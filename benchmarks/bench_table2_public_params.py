"""Table 2: public-parameter generation time vs maximal circuit rows.

Paper: 2^15 -> 104 s, 2^16 -> 221 s, 2^17 -> 410 s, 2^18 -> 832 s
(one-time, trusted-setup-free, reusable).  Expected shape: time roughly
doubles per k increment (linear in the number of generators).

We measure generation at k = 6..9 and extrapolate the per-generator
cost linearly to the paper's sizes.  The report footer also measures
the parallel backend (serial vs ``workers`` generation of the largest
size) and the artifact cache (the second fetch of the same parameters
must be a HIT served from disk).
"""

from repro.bench import (
    BenchConfig,
    bench_cache,
    bench_metadata,
    perf_summary_lines,
    serial_vs_parallel,
    timed,
)
from repro.bench.reporting import Report
from repro.commit import setup
from repro.commit.params import cached_setup


def test_table2_public_params(benchmark):
    config = BenchConfig()
    measured = {}

    def generate_k8():
        return setup(8, label=b"bench-t2")

    benchmark.pedantic(generate_k8, rounds=1, iterations=1)

    for k in (6, 7, 8, 9):
        _, measured[k] = timed(lambda: setup(k, label=b"bench-t2-%d" % k))

    # Linear model: seconds per generator from the largest measured run.
    per_generator = measured[9] / (1 << 9)

    paper = {15: 104, 16: 221, 17: 410, 18: 832}
    report = Report("table2_public_params", "Table 2: public parameter generation")
    rows = []
    for k, seconds in measured.items():
        rows.append((f"2^{k}", f"{seconds:.3f}", "-", "measured"))
    for k, paper_seconds in paper.items():
        estimate = per_generator * (1 << k)
        rows.append((f"2^{k}", f"{estimate:.0f}", paper_seconds, "extrapolated"))
    report.table(
        ["max rows", "this repo (s)", "paper (s)", "kind"], rows
    )
    # Shape check: doubling k doubles the cost (within tolerance).
    ratio = measured[9] / measured[8]
    report.line(f"\nmeasured 2^9/2^8 ratio = {ratio:.2f} (paper's table: ~2.0)")

    # Parallel backend: derive the 2^9 generators serially vs with
    # workers; results are bit-identical, only the wall clock moves.
    speedups = {}
    if config.workers > 1:
        speedups["setup 2^9"] = serial_vs_parallel(
            lambda: setup(9, label=b"bench-t2-par"), config.workers
        )

    # Artifact cache: a cold fetch builds and stores, a second fetch of
    # the identical description must come back from disk as a HIT.
    cache = bench_cache(config)
    params_a, first_hit = cached_setup(cache, config.k, label=b"bench-t2-cache")
    params_b, second_hit = cached_setup(cache, config.k, label=b"bench-t2-cache")
    assert second_hit or not cache.enabled
    assert params_a.g == params_b.g and params_a.w == params_b.w

    for line in perf_summary_lines(config, cache, speedups):
        report.line(line)
    report.emit(metadata=bench_metadata(config))
    assert 1.4 < ratio < 2.8
