"""Aggregated verification: per-proof cost vs batch size.

Proves one small TPC-H query, folds N copies of the claim into a
single ``AggProof`` (the ``PDBA`` envelope), and times
``VerifierNode.verify_aggregate`` across batch sizes: every entry
replays its cheap logarithmic checks, but all the linear-time
base-folding MSMs settle in **one** fixed-base accumulator finalize,
so the per-proof verify time falls as the batch grows -- extending the
service bench's 8-proof amortization measurement out to 16/32.

Also exercises the two soundness edges the CI smoke gates on: a
tampered aggregate must be rejected with the failure attributed to the
tampered entry, and an honest aggregate must round-trip through its
wire bytes.

Runs standalone (``python benchmarks/bench_aggregate.py [--sizes
1,2,4,8,...] [--check]``) or under pytest.  ``--check`` exits nonzero
unless honest aggregates accept at every size, the tampered aggregate
is rejected with attribution, and the per-proof verify cost at batch 8
beats sequential.  Results persist to
``benchmarks/results/aggregate.{txt,json}``.
"""

from __future__ import annotations

import argparse
import copy
import sys

from repro.api import PoneglyphDB
from repro.bench.harness import (
    BenchConfig,
    bench_metadata,
    prover_config,
    timed,
    tpch_db,
)
from repro.bench.reporting import Report

#: Same query shape the service bench and the soundness suite use.
SQL = "select count(*) as n from nation where n_regionkey >= 2"

DEFAULT_SIZES = (1, 2, 4, 8, 16, 32)


def run_aggregate_bench(sizes: tuple[int, ...] = DEFAULT_SIZES) -> dict:
    config = BenchConfig(k=7, lineitem_rows=64)
    db = tpch_db(config)
    session = PoneglyphDB.open(db, prover_config(config))
    try:
        session.commit()
        response = session.prove(SQL)
        verifier = session.verifier()
        # Warm the memoized vk so every timed path measures
        # verification, not key generation.
        verifier.verify(response).require()

        _, sequential_s = timed(lambda: verifier.verify(response).require())

        batches = []
        for n in sizes:
            agg = session.aggregate([response] * n)
            data = agg.to_bytes()
            report, agg_s = timed(lambda data=data: verifier.verify_aggregate(data))
            batches.append(
                {
                    "batch": n,
                    "aggregate_bytes": len(data),
                    "total_s": agg_s,
                    "per_proof_s": agg_s / n,
                    "speedup_vs_sequential": (
                        sequential_s / (agg_s / n) if agg_s else float("inf")
                    ),
                    "accepted": report.accepted,
                    "deferred_openings": report.deferred_openings,
                    "finalize_s": report.finalize_seconds,
                }
            )

        # Soundness edge: one tampered proof inside the batch must
        # reject the aggregate AND be attributed to the right entry.
        tamper_n = min(4, max(sizes))
        forged = copy.deepcopy(session.aggregate([response] * tamper_n))
        flipped = bytearray(forged.entries[-1].proof_bytes)
        flipped[len(flipped) - 40] ^= 0x01
        forged.entries[-1].proof_bytes = bytes(flipped)
        tampered_report = verifier.verify_aggregate(forged.to_bytes())
        attribution = [rep.accepted for rep in tampered_report.reports]
    finally:
        session.close()

    return {
        "sizes": list(sizes),
        "sequential_per_proof_s": sequential_s,
        "batches": batches,
        "tampered_rejected": not tampered_report.accepted,
        "tampered_attribution_ok": (
            attribution == [True] * (tamper_n - 1) + [False]
        ),
    }


def emit_report(result: dict) -> Report:
    report = Report(
        "aggregate", "Aggregated verification: one MSM finalize per batch"
    )
    report.line(
        "sequential baseline: "
        f"{result['sequential_per_proof_s']:.3f}s per proof\n"
    )
    report.table(
        ["batch", "PDBA bytes", "total s", "per-proof s", "vs sequential"],
        [
            (
                str(row["batch"]),
                str(row["aggregate_bytes"]),
                f"{row['total_s']:.2f}",
                f"{row['per_proof_s']:.3f}",
                f"{row['speedup_vs_sequential']:.2f}x",
            )
            for row in result["batches"]
        ],
    )
    last = result["batches"][-1]
    report.line(
        f"\nbatch {last['batch']}: {last['deferred_openings']} base-folding "
        f"MSMs folded into one {last['finalize_s']:.2f}s finalize; tampered "
        "aggregate rejected with attribution: "
        f"{result['tampered_rejected'] and result['tampered_attribution_ok']}."
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        type=lambda s: tuple(int(x) for x in s.split(",")),
        default=None,
        help="comma-separated batch sizes (default 1,2,4,8,16,32; "
        "--check defaults to 1,2,4,8)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless honest aggregates accept, tampered ones "
        "reject with attribution, and per-proof cost at batch 8 beats "
        "sequential",
    )
    args = parser.parse_args(argv)
    sizes = args.sizes or ((1, 2, 4, 8) if args.check else DEFAULT_SIZES)

    result = run_aggregate_bench(sizes)
    report = emit_report(result)
    config = BenchConfig(k=7, lineitem_rows=64)
    report.emit(metadata={**bench_metadata(config), "aggregate": result})

    failures = []
    if not all(row["accepted"] for row in result["batches"]):
        failures.append("an honest aggregate was rejected")
    if not result["tampered_rejected"]:
        failures.append("a tampered aggregate was ACCEPTED")
    if not result["tampered_attribution_ok"]:
        failures.append("tampered-entry attribution failed")
    if args.check:
        gate = max(n for n in sizes if n <= 8)
        gated = next(r for r in result["batches"] if r["batch"] == gate)
        if gated["per_proof_s"] >= result["sequential_per_proof_s"]:
            failures.append(
                f"aggregate per-proof at batch {gate} "
                f"({gated['per_proof_s']:.3f}s) did not beat sequential "
                f"({result['sequential_per_proof_s']:.3f}s)"
            )
    if failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1
    if args.check:
        from repro.bench import trend

        gate = max(n for n in sizes if n <= 8)
        gated = next(r for r in result["batches"] if r["batch"] == gate)
        regressions = trend.track(
            "aggregate",
            {
                "sequential_per_proof_s": result["sequential_per_proof_s"],
                f"batch{gate}_per_proof_s": gated["per_proof_s"],
                f"batch{gate}_speedup": gated["speedup_vs_sequential"],
            },
            directions={f"batch{gate}_speedup": "higher"},
        )
        if trend.report_regressions(regressions):
            return 1
        best = result["batches"][-1]
        print(
            f"CHECK OK: aggregated verification {best['speedup_vs_sequential']:.2f}x "
            f"faster per proof at batch {best['batch']}"
        )
    return 0


def test_aggregate_bench_smoke():
    """Pytest entry: small sizes must accept and reject as specified."""
    result = run_aggregate_bench(sizes=(1, 2))
    assert all(row["accepted"] for row in result["batches"])
    assert result["tampered_rejected"] and result["tampered_attribution_ok"]


if __name__ == "__main__":
    sys.exit(main())
