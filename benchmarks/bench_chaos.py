"""Crash-recovery latency of the journaled proving service.

Measures the cost of the fault-tolerance machinery end to end:

- **journal overhead**: wall time for N jobs through a journaled
  service vs. the same workload unjournaled (the WAL appends ride the
  submit/finish paths);
- **recovery latency**: after an ``abort()`` (the in-process crash
  model) with completed, running, and queued jobs on the journal, how
  long ``ProvingService.open`` takes to replay the journal and
  re-enqueue (``replay_seconds``), and how long until every recovered
  job has its byte-identical proof again (``recovery_total_seconds``).

Runs standalone (``python benchmarks/bench_chaos.py [--jobs N]
[--check]``) or under pytest.  ``--check`` exits nonzero unless every
recovered proof byte-matches its journaled digest and no regression
trips the trend tracker -- the CI chaos-smoke job gates on it.
Results persist to ``benchmarks/results/chaos.{txt,json}``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.bench.harness import timed
from repro.bench.reporting import Report
from repro.bench import trend
from repro.config import ServiceConfig
from repro.service.chaos import CHAOS_QUERIES, baseline_digests, build_session
from repro.service.journal import replay
from repro.service.service import ProvingService


def run_chaos_bench(jobs: int = 6, k: int = 6) -> dict:
    # Repeat the fixture queries with their pinned seeds: repeated
    # (sql, seed) pairs prove to identical bytes, so one baseline per
    # query covers every round.
    rounds = 1 + (jobs - 1) // len(CHAOS_QUERIES)
    workload = (list(CHAOS_QUERIES) * rounds)[:jobs]
    session = build_session(k=k)
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-chaos-"))
    journal_path = workdir / "bench.journal"
    try:
        expected = baseline_digests(session)

        def drain(service):
            ids = [service.submit(sql, rng_seed=s) for sql, s in workload]
            return [service.wait(job_id, timeout=3600) for job_id in ids]

        # Unjournaled baseline vs. journaled: the WAL's overhead.
        with session.serve(ServiceConfig(workers=2)) as service:
            _, plain_s = timed(lambda: drain(service))
        with session.serve(
            ServiceConfig(workers=2), journal_path=workdir / "overhead.journal"
        ) as service:
            _, journaled_s = timed(lambda: drain(service))

        # Build a crashed journal: one job done, the rest accepted but
        # unproved, then abort without drain (the crash model).
        service = ProvingService(
            session, ServiceConfig(workers=1), journal_path=journal_path
        )
        first_sql, first_seed = workload[0]
        done = service.submit(first_sql, rng_seed=first_seed)
        service.wait(done, timeout=3600)
        for sql, seed in workload[1:]:
            service.submit(sql, rng_seed=seed)
        service.abort()

        # Recovery: journal replay (parse + re-enqueue) and total time
        # back to a fully re-proved state.
        folded, replay_s = timed(lambda: replay(journal_path))

        def recover():
            with ProvingService.open(
                session, ServiceConfig(workers=2), journal_path=journal_path
            ) as recovered:
                job_ids = list(recovered._jobs)
                responses = [
                    recovered.wait(job_id, timeout=3600)
                    for job_id in job_ids
                ]
                ok = all(
                    recovered._get(job_id).result_digest
                    == expected[recovered._get(job_id).sql]
                    for job_id in job_ids
                )
                return recovered.recovered_jobs, ok, len(responses)

        (recovered_jobs, byte_identical, reproved), recovery_s = timed(recover)
    finally:
        session.close()

    return {
        "jobs": jobs,
        "k": k,
        "plain_wall_seconds": plain_s,
        "journaled_wall_seconds": journaled_s,
        "journal_overhead_pct": (
            100.0 * (journaled_s - plain_s) / plain_s if plain_s else 0.0
        ),
        "journal_records": folded.records,
        "replay_seconds": replay_s,
        "recovered_jobs": recovered_jobs,
        "reproved_jobs": reproved,
        "recovery_total_seconds": recovery_s,
        "recovery_per_job_s": recovery_s / recovered_jobs,
        "byte_identical": byte_identical,
    }


def emit_report(result: dict) -> Report:
    report = Report(
        "chaos", "Crash recovery: journal overhead + recovery latency"
    )
    report.line(
        f"{result['jobs']} jobs (k={result['k']}): journaled "
        f"{result['journaled_wall_seconds']:.1f}s vs plain "
        f"{result['plain_wall_seconds']:.1f}s wall "
        f"({result['journal_overhead_pct']:+.1f}% WAL overhead)\n"
    )
    report.table(
        ["recovery stage", "value"],
        [
            ("journal records replayed", str(result["journal_records"])),
            ("replay (parse + fold)", f"{result['replay_seconds'] * 1e3:.2f} ms"),
            ("jobs recovered", str(result["recovered_jobs"])),
            (
                "back to fully proved",
                f"{result['recovery_total_seconds']:.2f} s "
                f"({result['recovery_per_job_s']:.2f} s/job)",
            ),
            ("byte-identical proofs", str(result["byte_identical"])),
        ],
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=6)
    parser.add_argument("--k", type=int, default=6)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero on lost jobs, digest mismatch, or regression",
    )
    args = parser.parse_args(argv)

    result = run_chaos_bench(jobs=args.jobs, k=args.k)
    report = emit_report(result)
    report.emit(metadata={"chaos": result})

    if not result["byte_identical"]:
        print(
            "CHECK FAILED: a recovered proof did not byte-match its "
            "journaled digest",
            file=sys.stderr,
        )
        return 1
    if result["recovered_jobs"] != result["jobs"]:
        print(
            f"CHECK FAILED: recovered {result['recovered_jobs']} of "
            f"{result['jobs']} jobs",
            file=sys.stderr,
        )
        return 1
    if args.check:
        regressions = trend.track(
            "chaos",
            {
                "replay_seconds": result["replay_seconds"],
                "recovery_total_seconds": result["recovery_total_seconds"],
                "recovery_per_job_s": result["recovery_per_job_s"],
                "journal_overhead_pct": result["journal_overhead_pct"],
            },
        )
        if trend.report_regressions(regressions):
            return 1
        print(
            f"CHECK OK: {result['recovered_jobs']} jobs recovered "
            f"byte-identically in {result['recovery_total_seconds']:.2f}s"
        )
    return 0


# -- pytest entry -------------------------------------------------------------


def test_chaos_bench_smoke():
    result = run_chaos_bench(jobs=3)
    assert result["byte_identical"]
    assert result["recovered_jobs"] == 3
    emit_report(result)


if __name__ == "__main__":
    sys.exit(main())
