"""Kernel fast-path microbenchmarks.

Races every kernel in :mod:`repro.ecc` / :mod:`repro.algebra` against
the reference path it replaces, asserting the results are the same
group elements / field vectors before reporting the speedups:

- **MSM**: batch-affine Pippenger over GLV-split scalars vs the
  full-width Jacobian bucket path,
- **fixed-base**: table-driven commitments vs the generic MSM over the
  same parameter bases,
- **NTT**: cached bit-reversal/twiddle plans vs per-call rebuilding,
- **end-to-end**: a full TPC-H Q1 prove+verify with the fast path off
  and on (``--skip-e2e`` for the CI smoke run).

Runs standalone (``python benchmarks/bench_kernels.py [--points N]
[--skip-e2e] [--check]``) or under pytest.  ``--check`` exits nonzero
unless the batch-affine MSM beats the Jacobian path -- the CI kernel
smoke job gates on it.  Results persist to
``benchmarks/results/kernels.{txt,json}``.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro import kernels
from repro.algebra.domain import EvaluationDomain
from repro.algebra.field import SCALAR_FIELD
from repro.bench.harness import (
    BenchConfig,
    bench_metadata,
    build_tpch_system,
    real_prove_query,
    timed,
)
from repro.bench.reporting import Report
from repro.commit.ipa import commit_polynomial
from repro.commit.params import setup
from repro.ecc import fixed_base
from repro.ecc.curve import PALLAS
from repro.ecc.msm import msm


def bench_msm(n: int, seed: int = 7) -> dict:
    """Batch-affine + GLV MSM vs the Jacobian reference at ``n`` points."""
    rng = random.Random(seed)
    g = PALLAS.generator
    pts = []
    acc = g
    for i in range(n):
        pts.append(acc)
        acc = acc.double() if i % 3 else acc + g
    sc = [rng.randrange(1, SCALAR_FIELD.p) for _ in range(n)]
    with kernels.fastpath(False):
        ref, jacobian_s = timed(lambda: msm(pts, sc))
    fast, fast_s = timed(lambda: msm(pts, sc))
    assert fast == ref, "batch-affine MSM diverged from the Jacobian path"
    return {
        "points": n,
        "jacobian_s": jacobian_s,
        "fast_s": fast_s,
        "speedup": jacobian_s / fast_s if fast_s else float("inf"),
    }


def bench_fixed_base(k: int = 8, commits: int = 8, seed: int = 11) -> dict:
    """Fixed-base-table commitments vs generic MSMs over the same bases."""
    rng = random.Random(seed)
    params = setup(k, label=b"bench-kernels")
    jobs = [
        (
            [rng.randrange(SCALAR_FIELD.p) for _ in range(params.n)],
            rng.randrange(SCALAR_FIELD.p),
        )
        for _ in range(commits)
    ]

    def run():
        return [commit_polynomial(params, coeffs, blind) for coeffs, blind in jobs]

    with kernels.fastpath(False):
        ref, generic_s = timed(run)
    _tables, build_s = timed(lambda: fixed_base.tables_for_params(params))
    fast, fast_s = timed(run)
    assert fast == ref, "fixed-base commitments diverged from the generic MSM"
    return {
        "k": k,
        "commits": commits,
        "generic_s": generic_s,
        "table_build_s": build_s,
        "fast_s": fast_s,
        "speedup": generic_s / fast_s if fast_s else float("inf"),
    }


def bench_fft(k: int = 12, repeats: int = 16, seed: int = 13) -> dict:
    """Plan-cached NTTs vs per-call twiddle rebuilding."""
    rng = random.Random(seed)
    dom = EvaluationDomain(SCALAR_FIELD, k)
    vecs = [
        [rng.randrange(SCALAR_FIELD.p) for _ in range(dom.size)]
        for _ in range(repeats)
    ]
    with kernels.fastpath(False):
        ref, uncached_s = timed(lambda: [dom.fft(v) for v in vecs])
    dom.fft(vecs[0])  # warm the plan cache outside the timed region
    fast, cached_s = timed(lambda: [dom.fft(v) for v in vecs])
    assert fast == ref, "plan-cached NTT diverged from the reference"
    return {
        "k": k,
        "transforms": repeats,
        "uncached_s": uncached_s,
        "cached_s": cached_s,
        "speedup": uncached_s / cached_s if cached_s else float("inf"),
    }


def bench_e2e(config: BenchConfig) -> dict:
    """Full Q1 prove+verify, fast path off vs on, at bench scale.

    One warmup prove fills every cache whose cost is not the kernels'
    to claim (proving keys, fixed-base tables, NTT plans), so the two
    timed runs differ only in which arithmetic path executes.
    """
    prover, verifier = build_tpch_system(config)
    real_prove_query(config, "Q1", prover, verifier)  # warmup
    with kernels.fastpath(False):
        _, reference_s = timed(
            lambda: real_prove_query(config, "Q1", prover, verifier)
        )
    _, fast_s = timed(lambda: real_prove_query(config, "Q1", prover, verifier))
    return {
        "lineitem_rows": config.lineitem_rows,
        "k": config.k,
        "reference_s": reference_s,
        "fast_s": fast_s,
        "speedup": reference_s / fast_s if fast_s else float("inf"),
    }


def run_benches(
    config: BenchConfig,
    points: int = 4096,
    e2e: bool = True,
    check: bool = False,
) -> dict:
    results = {
        "msm": [bench_msm(n) for n in sorted({1024, points})],
        "fixed_base": bench_fixed_base(k=min(config.k, 8)),
        "fft": bench_fft(),
    }
    if e2e:
        results["e2e_q1"] = bench_e2e(config)

    report = Report("kernels", "Kernel fast path: measured speedups")
    report.line(
        "every row compares the optimized kernel against the reference "
        "path on identical inputs (results asserted equal first)\n"
    )
    rows = [
        (
            f"msm ({r['points']} pts)",
            f"{r['jacobian_s']:.3f}",
            f"{r['fast_s']:.3f}",
            f"{r['speedup']:.2f}x",
        )
        for r in results["msm"]
    ]
    fb = results["fixed_base"]
    rows.append(
        (
            f"fixed-base commits (2^{fb['k']} x{fb['commits']})",
            f"{fb['generic_s']:.3f}",
            f"{fb['fast_s']:.3f}",
            f"{fb['speedup']:.2f}x",
        )
    )
    ff = results["fft"]
    rows.append(
        (
            f"ntt (2^{ff['k']} x{ff['transforms']})",
            f"{ff['uncached_s']:.3f}",
            f"{ff['cached_s']:.3f}",
            f"{ff['speedup']:.2f}x",
        )
    )
    if e2e:
        ee = results["e2e_q1"]
        rows.append(
            (
                f"prove+verify Q1 ({ee['lineitem_rows']} rows, k={ee['k']})",
                f"{ee['reference_s']:.3f}",
                f"{ee['fast_s']:.3f}",
                f"{ee['speedup']:.2f}x",
            )
        )
    report.table(["kernel", "reference (s)", "fast (s)", "speedup"], rows)
    fb_amortized = fb["table_build_s"] / fb["commits"]
    report.line(
        f"\nfixed-base tables built once in {fb['table_build_s']:.3f}s "
        f"({fb_amortized:.3f}s amortized over the measured commits; "
        "persisted via the artifact cache across runs)"
    )
    report.emit(metadata={**bench_metadata(config), "kernels": results})

    if check:
        worst = min(r["speedup"] for r in results["msm"])
        if worst <= 1.0:
            print(
                f"CHECK FAILED: batch-affine MSM speedup {worst:.2f}x <= 1.0x",
                file=sys.stderr,
            )
            return {**results, "check_ok": False}
    return {**results, "check_ok": True}


def test_kernel_microbench(bench_config):
    """Pytest entry: small-size smoke run (the CI job uses the CLI)."""
    results = run_benches(bench_config, points=512, e2e=False, check=True)
    assert results["check_ok"], "batch-affine MSM slower than Jacobian path"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--points",
        type=int,
        default=4096,
        help="MSM microbenchmark size (default 4096)",
    )
    parser.add_argument(
        "--skip-e2e",
        action="store_true",
        help="skip the end-to-end Q1 prove (CI smoke runs)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless the batch-affine MSM beats the Jacobian path",
    )
    args = parser.parse_args(argv)
    results = run_benches(
        BenchConfig(),
        points=args.points,
        e2e=not args.skip_e2e,
        check=args.check,
    )
    if args.check and results["check_ok"]:
        # Only the CLI path feeds the regression history -- the pytest
        # smoke entry runs at a different size and would skew medians.
        from repro.bench import trend

        metrics = {
            f"msm_{r['points']}_fast_s": r["fast_s"] for r in results["msm"]
        }
        metrics["fixed_base_fast_s"] = results["fixed_base"]["fast_s"]
        metrics["fft_cached_s"] = results["fft"]["cached_s"]
        if "e2e_q1" in results:
            metrics["e2e_q1_fast_s"] = results["e2e_q1"]["fast_s"]
        if trend.report_regressions(trend.track("kernels", metrics)):
            return 1
    return 0 if results["check_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
