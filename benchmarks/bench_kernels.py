"""Kernel fast-path microbenchmarks.

Races every kernel in :mod:`repro.ecc` / :mod:`repro.algebra` against
the reference path it replaces, asserting the results are the same
group elements / field vectors before reporting the speedups:

- **MSM**: batch-affine Pippenger over GLV-split scalars vs the
  full-width Jacobian bucket path,
- **fixed-base**: table-driven commitments vs the generic MSM over the
  same parameter bases,
- **NTT**: cached bit-reversal/twiddle plans vs per-call rebuilding,
- **field backend**: the numpy limb-vector engine vs the pure-Python
  backend on whole-vector ops (batch inversion, NTT, Lagrange basis,
  extended-domain expression evaluation), raced through the
  ``repro.algebra.backend`` toggle,
- **end-to-end**: a full TPC-H Q1 prove+verify with the fast path off
  and on (``--skip-e2e`` for the CI smoke run).

Runs standalone (``python benchmarks/bench_kernels.py [--points N]
[--backend-n N] [--skip-e2e] [--check]``) or under pytest.  ``--check``
exits nonzero unless the batch-affine MSM beats the Jacobian path and
(with numpy installed, at ``--backend-n`` >= 8192) the vector backend
clears its floor on the NTT and batch-inversion rows -- the CI kernel
smoke job gates on it.  Results persist to
``benchmarks/results/kernels.{txt,json}``.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro import kernels
from repro.algebra import backend as field_backend
from repro.algebra.domain import EvaluationDomain
from repro.algebra.field import SCALAR_FIELD, montgomery_batch_inv
from repro.bench.harness import (
    BenchConfig,
    bench_metadata,
    build_tpch_system,
    real_prove_query,
    timed,
)
from repro.bench.reporting import Report
from repro.commit.ipa import commit_polynomial
from repro.commit.params import setup
from repro.ecc import fixed_base
from repro.ecc.curve import PALLAS
from repro.ecc.msm import msm


def bench_msm(n: int, seed: int = 7) -> dict:
    """Batch-affine + GLV MSM vs the Jacobian reference at ``n`` points."""
    rng = random.Random(seed)
    g = PALLAS.generator
    pts = []
    acc = g
    for i in range(n):
        pts.append(acc)
        acc = acc.double() if i % 3 else acc + g
    sc = [rng.randrange(1, SCALAR_FIELD.p) for _ in range(n)]
    with kernels.fastpath(False):
        ref, jacobian_s = timed(lambda: msm(pts, sc))
    fast, fast_s = timed(lambda: msm(pts, sc))
    assert fast == ref, "batch-affine MSM diverged from the Jacobian path"
    return {
        "points": n,
        "jacobian_s": jacobian_s,
        "fast_s": fast_s,
        "speedup": jacobian_s / fast_s if fast_s else float("inf"),
    }


def bench_fixed_base(k: int = 8, commits: int = 8, seed: int = 11) -> dict:
    """Fixed-base-table commitments vs generic MSMs over the same bases."""
    rng = random.Random(seed)
    params = setup(k, label=b"bench-kernels")
    jobs = [
        (
            [rng.randrange(SCALAR_FIELD.p) for _ in range(params.n)],
            rng.randrange(SCALAR_FIELD.p),
        )
        for _ in range(commits)
    ]

    def run():
        return [commit_polynomial(params, coeffs, blind) for coeffs, blind in jobs]

    with kernels.fastpath(False):
        ref, generic_s = timed(run)
    _tables, build_s = timed(lambda: fixed_base.tables_for_params(params))
    fast, fast_s = timed(run)
    assert fast == ref, "fixed-base commitments diverged from the generic MSM"
    return {
        "k": k,
        "commits": commits,
        "generic_s": generic_s,
        "table_build_s": build_s,
        "fast_s": fast_s,
        "speedup": generic_s / fast_s if fast_s else float("inf"),
    }


def bench_fft(k: int = 12, repeats: int = 16, seed: int = 13) -> dict:
    """Plan-cached NTTs vs per-call twiddle rebuilding."""
    rng = random.Random(seed)
    dom = EvaluationDomain(SCALAR_FIELD, k)
    vecs = [
        [rng.randrange(SCALAR_FIELD.p) for _ in range(dom.size)]
        for _ in range(repeats)
    ]
    with kernels.fastpath(False):
        ref, uncached_s = timed(lambda: [dom.fft(v) for v in vecs])
    dom.fft(vecs[0])  # warm the plan cache outside the timed region
    fast, cached_s = timed(lambda: [dom.fft(v) for v in vecs])
    assert fast == ref, "plan-cached NTT diverged from the reference"
    return {
        "k": k,
        "transforms": repeats,
        "uncached_s": uncached_s,
        "cached_s": cached_s,
        "speedup": uncached_s / cached_s if cached_s else float("inf"),
    }


def bench_field_backend(n: int = 16384, seed: int = 17) -> dict | None:
    """Numpy limb-vector backend vs the pure-Python reference on
    whole-vector field ops, results asserted equal first.

    Returns ``None`` when numpy is not installed (the rows are skipped;
    the fallback path is what the rest of the suite measures then).

    The batch-inversion row is measured *vector-resident* (operands and
    results in limb-array form): that is how the backend actually uses
    the product tree -- the Lagrange hook generates the denominators as
    a vector and consumes the inverses in place.  Crossing the int
    boundary both ways costs ~600ns/element, which is more than the
    ladder itself saves over CPython's C-speed bigint multiply; that
    is why the backend declines plain list-in/list-out batch_inv.
    """
    if "numpy" not in field_backend.available_backends():
        return None
    from repro.algebra.backend import numpy_limb
    from repro.proving.evaluation import evaluate_expression_ext

    rng = random.Random(seed)
    p = SCALAR_FIELD.p
    dom = EvaluationDomain(SCALAR_FIELD, n.bit_length() - 1)
    vals = [rng.randrange(1, p) for _ in range(dom.size)]

    # -- NTT: whole transform through the domain's public entry point.
    with field_backend.backend("python"):
        dom.fft(vals)  # warm the plan cache
        ref_fft, python_fft_s = timed(lambda: dom.fft(vals))
    with field_backend.backend("numpy"):
        dom.fft(vals)  # warm the limb twiddle tables
        fast_fft, numpy_fft_s = timed(lambda: dom.fft(vals))
    assert fast_fft == ref_fft, "backend NTT diverged from the reference"

    # -- batch inversion: resident product tree vs Montgomery ladder.
    ref_inv, python_inv_s = timed(lambda: montgomery_batch_inv(vals, p))
    ctx = numpy_limb.ctx_for(p)
    arr = ctx.lift(vals)
    ctx.tree_inv_arr(arr)  # warm the tree arenas
    fast_arr, numpy_inv_s = timed(lambda: ctx.tree_inv_arr(arr))
    assert ctx.lower(fast_arr) == ref_inv, "tree inversion diverged"

    # -- Lagrange basis: the fused consumer of the resident inversion.
    x = rng.randrange(p)
    with field_backend.backend("python"):
        ref_lag, python_lag_s = timed(
            lambda: dom.lagrange_basis_evals(x, dom.size)
        )
    with field_backend.backend("numpy"):
        dom.lagrange_basis_evals(x, dom.size)  # warm the power table
        fast_lag, numpy_lag_s = timed(
            lambda: dom.lagrange_basis_evals(x, dom.size)
        )
    assert fast_lag == ref_lag, "backend Lagrange evals diverged"

    # -- expression evaluation over an extended domain, on a shape the
    # backend's cost model *accepts*: a deep sum chain of rotated
    # queries under one selector product (accumulator-recurrence
    # style).  Shallow product-heavy gates are declined by the model
    # (the lift/lower boundary tax outruns the per-node savings) and
    # run the identical scalar loop on both sides, so racing one would
    # measure nothing.
    from repro.plonkish.expression import ColumnQuery, Product, Sum

    cols = [object() for _ in range(2)]
    data = {
        id(c): [rng.randrange(p) for _ in range(dom.size)] for c in cols
    }
    acc = ColumnQuery(cols[0])
    for shift in range(1, 17):
        acc = Sum(acc, ColumnQuery(cols[0], rotation=shift % 4))
    expr = Product(ColumnQuery(cols[1]), acc)
    get = lambda col: data[id(col)]
    with field_backend.backend("python"):
        ref_expr, python_expr_s = timed(
            lambda: evaluate_expression_ext(expr, get, dom.size, 4, p)
        )
    with field_backend.backend("numpy"):
        fast_expr, numpy_expr_s = timed(
            lambda: evaluate_expression_ext(expr, get, dom.size, 4, p)
        )
    assert fast_expr == ref_expr, "backend expression eval diverged"

    def row(python_s, numpy_s):
        return {
            "python_s": python_s,
            "numpy_s": numpy_s,
            "speedup": python_s / numpy_s if numpy_s else float("inf"),
        }

    return {
        "n": dom.size,
        "fft": row(python_fft_s, numpy_fft_s),
        "batch_inv": row(python_inv_s, numpy_inv_s),
        "lagrange": row(python_lag_s, numpy_lag_s),
        "expr_eval": row(python_expr_s, numpy_expr_s),
    }


def bench_e2e(config: BenchConfig) -> dict:
    """Full Q1 prove+verify, fast path off vs on, at bench scale.

    One warmup prove fills every cache whose cost is not the kernels'
    to claim (proving keys, fixed-base tables, NTT plans), so the two
    timed runs differ only in which arithmetic path executes.
    """
    prover, verifier = build_tpch_system(config)
    real_prove_query(config, "Q1", prover, verifier)  # warmup
    with kernels.fastpath(False):
        _, reference_s = timed(
            lambda: real_prove_query(config, "Q1", prover, verifier)
        )
    _, fast_s = timed(lambda: real_prove_query(config, "Q1", prover, verifier))
    return {
        "lineitem_rows": config.lineitem_rows,
        "k": config.k,
        "reference_s": reference_s,
        "fast_s": fast_s,
        "speedup": reference_s / fast_s if fast_s else float("inf"),
    }


def run_benches(
    config: BenchConfig,
    points: int = 4096,
    e2e: bool = True,
    check: bool = False,
    backend_n: int = 16384,
) -> dict:
    results = {
        "msm": [bench_msm(n) for n in sorted({1024, points})],
        "fixed_base": bench_fixed_base(k=min(config.k, 8)),
        "fft": bench_fft(),
    }
    backend_rows = bench_field_backend(n=backend_n)
    if backend_rows is not None:
        results["field_backend"] = backend_rows
    if e2e:
        results["e2e_q1"] = bench_e2e(config)

    report = Report("kernels", "Kernel fast path: measured speedups")
    report.line(
        "every row compares the optimized kernel against the reference "
        "path on identical inputs (results asserted equal first)\n"
    )
    rows = [
        (
            f"msm ({r['points']} pts)",
            f"{r['jacobian_s']:.3f}",
            f"{r['fast_s']:.3f}",
            f"{r['speedup']:.2f}x",
        )
        for r in results["msm"]
    ]
    fb = results["fixed_base"]
    rows.append(
        (
            f"fixed-base commits (2^{fb['k']} x{fb['commits']})",
            f"{fb['generic_s']:.3f}",
            f"{fb['fast_s']:.3f}",
            f"{fb['speedup']:.2f}x",
        )
    )
    ff = results["fft"]
    rows.append(
        (
            f"ntt (2^{ff['k']} x{ff['transforms']})",
            f"{ff['uncached_s']:.3f}",
            f"{ff['cached_s']:.3f}",
            f"{ff['speedup']:.2f}x",
        )
    )
    if "field_backend" in results:
        fb_rows = results["field_backend"]
        bn = fb_rows["n"]
        for key, label in (
            ("fft", f"backend: ntt ({bn} pts)"),
            ("batch_inv", f"backend: batch inv resident ({bn})"),
            ("lagrange", f"backend: lagrange basis ({bn})"),
            ("expr_eval", f"backend: expression eval ({bn})"),
        ):
            r = fb_rows[key]
            rows.append(
                (
                    label,
                    f"{r['python_s']:.3f}",
                    f"{r['numpy_s']:.3f}",
                    f"{r['speedup']:.2f}x",
                )
            )
    if e2e:
        ee = results["e2e_q1"]
        rows.append(
            (
                f"prove+verify Q1 ({ee['lineitem_rows']} rows, k={ee['k']})",
                f"{ee['reference_s']:.3f}",
                f"{ee['fast_s']:.3f}",
                f"{ee['speedup']:.2f}x",
            )
        )
    report.table(["kernel", "reference (s)", "fast (s)", "speedup"], rows)
    fb_amortized = fb["table_build_s"] / fb["commits"]
    report.line(
        f"\nfixed-base tables built once in {fb['table_build_s']:.3f}s "
        f"({fb_amortized:.3f}s amortized over the measured commits; "
        "persisted via the artifact cache across runs)"
    )
    report.emit(metadata={**bench_metadata(config), "kernels": results})

    if check:
        worst = min(r["speedup"] for r in results["msm"])
        if worst <= 1.0:
            print(
                f"CHECK FAILED: batch-affine MSM speedup {worst:.2f}x <= 1.0x",
                file=sys.stderr,
            )
            return {**results, "check_ok": False}
        # Backend floors only apply at sizes where the vector engine's
        # dispatch overhead is amortized (small smoke runs skip them);
        # set below the steady-state measurements (~1.5x NTT, ~1.3x
        # resident inversion at 16384) to absorb CI jitter.
        if "field_backend" in results and results["field_backend"]["n"] >= 8192:
            fb_rows = results["field_backend"]
            for key, floor in (("fft", 1.25), ("batch_inv", 1.05)):
                got = fb_rows[key]["speedup"]
                if got < floor:
                    print(
                        f"CHECK FAILED: field backend {key} speedup "
                        f"{got:.2f}x < {floor}x at n={fb_rows['n']}",
                        file=sys.stderr,
                    )
                    return {**results, "check_ok": False}
    return {**results, "check_ok": True}


def test_kernel_microbench(bench_config):
    """Pytest entry: small-size smoke run (the CI job uses the CLI)."""
    results = run_benches(bench_config, points=512, e2e=False, check=True)
    assert results["check_ok"], "batch-affine MSM slower than Jacobian path"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--points",
        type=int,
        default=4096,
        help="MSM microbenchmark size (default 4096)",
    )
    parser.add_argument(
        "--skip-e2e",
        action="store_true",
        help="skip the end-to-end Q1 prove (CI smoke runs)",
    )
    parser.add_argument(
        "--backend-n",
        type=int,
        default=16384,
        help="field-backend race size (default 16384, the extended "
        "domain of a 2^12 circuit; floors gate at >= 8192)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless the batch-affine MSM beats the "
        "Jacobian path and the field backend clears its floors",
    )
    args = parser.parse_args(argv)
    results = run_benches(
        BenchConfig(),
        points=args.points,
        e2e=not args.skip_e2e,
        check=args.check,
        backend_n=args.backend_n,
    )
    if args.check and results["check_ok"]:
        # Only the CLI path feeds the regression history -- the pytest
        # smoke entry runs at a different size and would skew medians.
        from repro.bench import trend

        metrics = {
            f"msm_{r['points']}_fast_s": r["fast_s"] for r in results["msm"]
        }
        metrics["fixed_base_fast_s"] = results["fixed_base"]["fast_s"]
        metrics["fft_cached_s"] = results["fft"]["cached_s"]
        if "field_backend" in results:
            fb_rows = results["field_backend"]
            for key in ("fft", "batch_inv", "lagrange", "expr_eval"):
                metrics[f"backend_{key}_numpy_s"] = fb_rows[key]["numpy_s"]
        if "e2e_q1" in results:
            metrics["e2e_q1_fast_s"] = results["e2e_q1"]["fast_s"]
        if trend.report_regressions(trend.track("kernels", metrics)):
            return 1
    return 0 if results["check_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
