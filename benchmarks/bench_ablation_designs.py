"""Ablations of the paper's design choices (DESIGN.md section 5).

1. **Naive product range check vs lookup-based** (section 4.1): the
   rejected encoding ``prod_{i=0..t}(x - i) = 0`` has constraint degree
   t+2, so the extended evaluation domain -- and prover work -- grows
   linearly with the bound; the lookup design's degree is constant.
2. **Limb width** (Design C): wider limbs mean fewer lookups per value
   but a bigger fixed table (and minimum circuit size).
3. **Sorting network vs permutation argument** (section 4.2 vs ZKSQL):
   boolean compare-exchange networks cost n/2*log^2(n) comparators of
   6*bits gates; the PLONKish sort costs one shuffle column plus one
   limb-decomposed comparison per adjacent pair -- linear in n.
"""

from repro.algebra import SCALAR_FIELD as F
from repro.bench.reporting import Report
from repro.gates import NaiveRangeCheckChip, RangeDecomposeChip, RangeTable
from repro.plonkish import Assignment, ConstraintSystem, MockProver


def _naive_circuit(bound: int) -> ConstraintSystem:
    cs = ConstraintSystem()
    q = cs.selector("q")
    v = cs.advice_column("v")
    NaiveRangeCheckChip(cs, "naive", q.cur(), v.cur(), bound)
    return cs


def _lookup_circuit(limb_bits: int, n_limbs: int) -> ConstraintSystem:
    cs = ConstraintSystem()
    table = RangeTable(cs, limb_bits)
    q = cs.selector("q")
    v = cs.advice_column("v")
    RangeDecomposeChip(cs, "decompose", q.cur(), v.cur(), table, n_limbs)
    return cs


def test_ablation_range_check_degree(benchmark):
    def build():
        return {bound: _naive_circuit(bound) for bound in (4, 8, 16, 32, 64)}

    naive = benchmark.pedantic(build, rounds=1, iterations=1)
    lookup = _lookup_circuit(8, 8)

    report = Report(
        "ablation_range_check",
        "Ablation: naive product range check vs lookup designs A-C",
    )
    rows = []
    for bound, cs in naive.items():
        degree = cs.required_degree()
        rows.append(
            (f"naive, t={bound}", degree, f"{degree - 1}x rows",
             "grows with t")
        )
    lk_degree = lookup.required_degree()
    rows.append(
        (f"lookup, 64-bit via 8 u8 limbs", lk_degree,
         f"{1 << max(1, (lk_degree - 1).bit_length())}x rows", "constant")
    )
    report.table(
        ["design", "constraint degree", "extended domain", "scaling"], rows
    )
    report.line(
        "\nthe naive design's degree (hence prover FFT size) grows "
        "linearly with the range bound -- the paper's reason for "
        "adopting Plookup-style range checks."
    )
    report.emit()
    assert naive[64].required_degree() > lookup.required_degree()


def test_ablation_limb_width(benchmark):
    def build():
        out = {}
        for limb_bits in (2, 4, 8):
            n_limbs = 16 // limb_bits
            cs = _lookup_circuit(limb_bits, n_limbs)
            out[limb_bits] = (
                n_limbs,
                1 << limb_bits,
                len(cs.lookups),
                cs.required_degree(),
            )
        return out

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    report = Report("ablation_limb_width", "Ablation: Design C limb width (16-bit values)")
    report.table(
        ["limb bits", "limbs/value", "table size", "lookups", "degree"],
        [
            (bits, n, size, lookups, degree)
            for bits, (n, size, lookups, degree) in stats.items()
        ],
    )
    report.line(
        "\ntrade-off: wider limbs halve the per-value lookups but square "
        "the fixed table (and the minimum circuit rows); the paper "
        "settles on 8-bit u8 cells."
    )
    report.emit()
    assert stats[2][2] > stats[8][2]  # more lookups at narrower limbs


def test_ablation_sort_designs(benchmark):
    def count():
        rows = []
        for n in (1_000, 10_000, 60_000):
            log = max(1, (n - 1).bit_length())
            boolean_gates = (n // 2) * log * log * 6 * 64
            # PLONKish: shuffle (1 grand product column) + per-pair limb
            # decomposition: 8 lookups + 1 recomposition per row.
            plonkish_constraint_rows = n * (8 + 1 + 1)
            rows.append((n, boolean_gates, plonkish_constraint_rows,
                         boolean_gates / plonkish_constraint_rows))
        return rows

    rows = benchmark.pedantic(count, rounds=1, iterations=1)
    report = Report("ablation_sort", "Ablation: sorting network vs permutation sort")
    report.table(
        ["rows", "boolean network gates (ZKSQL)",
         "PLONKish constraint rows", "ratio"],
        [(n, f"{b:,}", f"{p:,}", f"{r:.0f}x") for n, b, p, r in rows],
    )
    report.line(
        "\nthe permutation-argument sort is linear in n; compare-exchange "
        "networks carry an extra log^2(n) factor -- but operate on cheaper "
        "boolean gates, which is why Figure 7 shows ZKSQL competitive on "
        "sort-heavy queries."
    )
    report.emit()
    assert rows[-1][3] > rows[0][3]  # the gap widens with n
