"""One day of traffic, one check: the aggregation pipeline end to end.

A prover answers several queries over a committed TPC-H instance and
folds the proofs into a single transportable ``AggProof`` (the ``PDBA``
wire format).  A light client -- or a regulator pinning an audit log --
then settles the whole batch with **one** fixed-base accumulator
finalize instead of replaying every proof's linear-time MSMs, which is
the paper's recursive proof-composition story made concrete.

Also shows the failure mode that matters: tampering with any single
proof inside the aggregate rejects the claim, and the verifier
attributes the rejection to the tampered entry.

Run:  python examples/aggregated_verification.py
"""

import copy

from repro import PoneglyphDB, ProverConfig
from repro.proving.aggregate import AggProof
from repro.tpch import generate

QUERIES = [
    "select count(*) as n from nation where n_regionkey >= 2",
    "select count(*) as n from region",
    "select count(*) as n from nation",
]

db = generate(64, seed=11)
config = ProverConfig(k=7, limb_bits=4, value_bits=24, key_bits=16)

with PoneglyphDB.open(db, config) as session:
    session.commit()

    # -- prover side: answer queries, fold the proofs into one claim --
    responses = [session.prove(sql) for sql in QUERIES]
    agg = session.aggregate(responses)
    wire = agg.to_bytes()
    print(f"{agg.proofs} proofs folded into one {len(wire)}-byte PDBA claim")
    print(f"epoch digest (what an audit log pins): {agg.digest().hex()}\n")

    # -- light-client side: decode strictly, verify with one finalize --
    decoded = AggProof.from_bytes(wire)
    assert decoded.to_bytes() == wire  # canonical round-trip
    report = session.verify_aggregate(wire)
    print(
        f"verify_aggregate: accepted={report.accepted} -- "
        f"{report.deferred_openings} base-folding MSMs settled by one "
        f"{report.finalize_seconds * 1e3:.0f}ms finalize"
    )

    # -- regulator side: attest the epoch by checking one accumulator --
    cert = session.audit_aggregate(wire)
    print(
        f"audit_aggregate:  valid={cert.valid}, {cert.proofs} proofs, "
        f"digest={cert.digest.hex()[:16]}...\n"
    )

    # -- the attack: one tampered proof inside the batch ---------------
    forged = copy.deepcopy(agg)
    flipped = bytearray(forged.entries[1].proof_bytes)
    flipped[-40] ^= 0x01
    forged.entries[1].proof_bytes = bytes(flipped)
    bad = session.verify_aggregate(forged.to_bytes())
    verdicts = [rep.accepted for rep in bad.reports]
    print(f"tampered entry 1: accepted={bad.accepted} ({bad.reason})")
    print(f"attribution: per-entry verdicts {verdicts}")
    assert not bad.accepted and verdicts == [True, False, True]
