"""Quickstart: prove and verify a SQL query over a private database.

Runs the complete PoneglyphDB workflow (paper Figure 2) end to end in
about a minute on a laptop, through the `repro.PoneglyphDB` session
facade:

1. the data owner opens a session over a private database (public
   parameters come from the on-disk artifact cache -- the second run
   of this script skips their generation) and publishes the database
   commitment,
2. an auditor attests the commitment matches the authentic data,
3. a client sends a SQL query; the owner answers with the result plus
   a non-interactive zero-knowledge proof,
4. the client verifies the proof against the commitment -- without ever
   seeing a single row of the database.

Run:  python examples/quickstart.py

Knobs (see ProverConfig): ``workers=N`` fans the crypto out over N
processes with bit-identical results; ``use_cache=False`` forces cold
parameter and key generation.
"""

import time

from repro import PoneglyphDB, ProverConfig
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import DECIMAL, INT, STRING

# -- 1. the private database (hospital-style scenario from the paper) --
db = Database()
db.create_table(
    TableSchema(
        "patients",
        [
            ColumnDef("p_id", INT),
            ColumnDef("p_region", STRING),
            ColumnDef("p_age", INT),
            ColumnDef("p_cost", DECIMAL),
        ],
        primary_key="p_id",
    ),
    [
        (1, "north", 34, 1250.50),
        (2, "south", 58, 3890.00),
        (3, "north", 45, 760.25),
        (4, "east", 67, 5120.75),
        (5, "south", 29, 310.00),
        (6, "north", 51, 2440.10),
        (7, "east", 72, 6900.00),
        (8, "south", 40, 1105.60),
    ],
)

# 128-row circuits: plenty for this demo.  The reduced bit widths keep
# the pure-Python range checks fast; the paper's full design is 8/64/48.
config = ProverConfig(k=7, limb_bits=4, value_bits=24, key_bits=32)

print("opening session (public parameters via the artifact cache)...")
with PoneglyphDB.open(db, config) as session:
    if session.params_cache_hit:
        print("  parameters loaded from cache")

    # -- 2. commit + audit ----------------------------------------------
    commitment = session.commit()
    print(f"database committed; root = {commitment.root.hex()[:32]}...")
    assert session.audit().valid
    print("auditor attests the commitment matches the authentic database")

    # -- 3. the client's query ------------------------------------------
    sql = (
        "select p_region, count(*) as patients, avg(p_cost) as avg_cost "
        "from patients where p_age >= 40 "
        "group by p_region order by avg_cost desc"
    )
    print(f"\nclient query:\n  {sql}\n")
    t0 = time.time()
    response = session.prove(sql)
    print(f"prover answered in {time.time() - t0:.1f}s "
          f"(proof: {response.proof_size_bytes / 1024:.1f} KB)")
    print("result:")
    for row in response.result:
        print("  ", dict(zip(response.column_names, row)))

    # -- 4. verification -------------------------------------------------
    t0 = time.time()
    report = session.verify(response)
    print(f"\nverifier checked the proof in {time.time() - t0:.1f}s -> "
          f"{'ACCEPTED' if report.accepted else 'REJECTED: ' + report.reason}")
    assert report.accepted

    # A tampered result is rejected.
    import copy

    forged = copy.deepcopy(response)
    forged.result_encoded[0][1] += 1  # inflate a count
    assert not session.verify(forged).accepted
    print("a forged result is rejected -- the answer is cryptographically bound")
    print(f"\nartifact cache this run: {session.cache_summary()}")
