"""Verifiable TPC-H analytics: the paper's evaluation workload end to
end at laptop scale.

Generates a deterministic TPC-H database, runs a selection of the six
evaluation queries through the full pipeline (parse -> plan -> circuit
-> prove -> verify), and prints the decoded answers with proof sizes.

Run:  python examples/tpch_analytics.py          (fast: mock-checked)
      python examples/tpch_analytics.py --prove  (real proofs; minutes)
"""

import sys
import time

from repro.algebra import SCALAR_FIELD
from repro.commit import setup
from repro.plonkish import Assignment, MockProver
from repro.sql.compiler import QueryCompiler
from repro.sql.executor import Executor
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.sql.plan import describe
from repro.config import ProverConfig
from repro.system import ProverNode, VerifierNode
from repro.tpch import QUERIES, generate

REAL_PROOFS = "--prove" in sys.argv
LINEITEM_ROWS = 64
K = 8

print(f"generating TPC-H at {LINEITEM_ROWS} lineitem rows...")
db = generate(LINEITEM_ROWS)
print({name: len(t) for name, t in db.tables.items()})

if REAL_PROOFS:
    params = setup(K)
    prover = ProverNode(
        db,
        params,
        config=ProverConfig(
            k=K, limb_bits=4, value_bits=32, key_bits=40, use_cache=False
        ),
    )
    commitment = prover.publish_commitment()
    verifier = VerifierNode(params, prover.public_metadata(), commitment)

planner = Planner(db)
executor = Executor(db)

for name in ("Q1", "Q3", "Q5"):
    sql = QUERIES[name]
    print(f"\n=== TPC-H {name} ===")
    plan = planner.plan(parse(sql))
    print(describe(plan))
    if REAL_PROOFS:
        t0 = time.time()
        response = prover.answer(sql)
        print(f"proved in {time.time() - t0:.0f}s; "
              f"proof {response.proof_size_bytes / 1024:.1f} KB")
        report = verifier.verify(response)
        print("verification:", "ACCEPTED" if report.accepted else report.reason)
        assert report.accepted
        rows = response.result
        headers = response.column_names
    else:
        t0 = time.time()
        compiled = QueryCompiler(db, K, limb_bits=4, value_bits=32,
                                 key_bits=40).compile(plan)
        asg = Assignment(compiled.cs, SCALAR_FIELD, K)
        encoded = compiled.assign_witness(asg, db)
        MockProver(compiled.cs, asg, SCALAR_FIELD).assert_satisfied()
        print(f"circuit satisfied in {time.time() - t0:.1f}s "
              f"({len(compiled.cs.advice_columns)} advice columns, "
              f"{len(compiled.cs.lookups)} lookups)")
        rows = encoded
        headers = [m.name for m in compiled.outputs]
    print("result rows:")
    for row in rows[:5]:
        print("  ", dict(zip(headers, row)))
    if len(rows) > 5:
        print(f"   ... and {len(rows) - 5} more")
