"""The paper's motivating scenario (section 1 and 3.3): a medical
institution X shares verifiable insights with data consumers Y, Z and W
without disclosing raw patient data.

Demonstrates the non-interactive property that motivates PoneglyphDB
over interactive ZKP systems: X generates ONE proof per query; every
consumer verifies the same proof independently, asynchronously, with no
per-verifier interaction -- and the recursion accumulator batches the
expensive verification work across proofs.

Run:  python examples/healthcare_collaboration.py
"""

import time

from repro.commit import setup
from repro.proving.recursion import Accumulator
from repro.algebra import SCALAR_FIELD
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import DATE, INT, STRING
from repro.config import ProverConfig
from repro.system import ProverNode, VerifierNode

# Institution X's private study data.
db = Database()
db.create_table(
    TableSchema(
        "cohort",
        [
            ColumnDef("c_id", INT),
            ColumnDef("c_site", STRING),
            ColumnDef("c_age", INT),
            ColumnDef("c_biomarker", INT),
            ColumnDef("c_enrolled", DATE),
        ],
        primary_key="c_id",
    ),
    [
        (1, "boston", 61, 140, "1995-02-01"),
        (2, "boston", 44, 95, "1995-03-10"),
        (3, "irvine", 57, 180, "1995-01-20"),
        (4, "irvine", 38, 75, "1995-04-02"),
        (5, "austin", 66, 210, "1995-02-14"),
        (6, "boston", 52, 120, "1995-05-05"),
        (7, "austin", 47, 160, "1995-03-30"),
        (8, "irvine", 71, 230, "1995-01-09"),
        (9, "austin", 35, 60, "1995-06-18"),
        (10, "boston", 59, 175, "1995-02-27"),
    ],
)

K = 7
params = setup(K)
institution_x = ProverNode(
    db,
    params,
    config=ProverConfig(
        k=K, limb_bits=4, value_bits=24, key_bits=16, use_cache=False
    ),
)
commitment = institution_x.publish_commitment()
metadata = institution_x.public_metadata()
print("institution X committed its cohort database\n")

# X answers two study queries -- once each.
queries = [
    ("Y: elevated-biomarker counts by site",
     "select c_site, count(*) as n from cohort "
     "where c_biomarker >= 150 group by c_site order by n desc"),
    ("Z: average biomarker among patients 50+",
     "select avg(c_biomarker) as avg_marker, count(*) as n "
     "from cohort where c_age >= 50"),
]
responses = []
for label, sql in queries:
    t0 = time.time()
    response = institution_x.answer(sql)
    responses.append((label, response))
    print(f"proved [{label}] in {time.time() - t0:.1f}s; "
          f"result = {response.result}")

# Three independent consumers verify the SAME proofs -- no interaction
# with X, no shared state, any time later.
print("\nconsumers verify independently (non-interactive, transferable):")
for consumer in ("Y", "Z", "W"):
    verifier = VerifierNode(params, metadata, commitment)
    accumulator = Accumulator(verifier.params, SCALAR_FIELD)
    t0 = time.time()
    for label, response in responses:
        report = verifier.verify(response, accumulator=accumulator)
        assert report.accepted, (consumer, label, report.reason)
    assert accumulator.finalize()
    print(f"  consumer {consumer}: both proofs accepted in "
          f"{time.time() - t0:.1f}s "
          f"({accumulator.deferred_count} openings batched into one check)")

print("\nX's raw cohort never left the institution; every consumer has a "
      "cryptographic guarantee the answers are correct computations over "
      "the audited database.")
