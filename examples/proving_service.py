"""Serving proofs asynchronously: the proving-service workflow.

A hospital consortium (the data owner) runs one committed session and
serves many analyst queries through a worker farm: analysts submit SQL
and poll for progress; the verifying client checks the drained batch
with one amortized accumulator check instead of proof-by-proof.

Run from the repo root:

    PYTHONPATH=src python examples/proving_service.py
"""

import time

from repro import PoneglyphDB, Priority, ProverConfig, ServiceConfig
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import INT, STRING

db = Database()
db.create_table(
    TableSchema(
        "admissions",
        [
            ColumnDef("id", INT),
            ColumnDef("ward", STRING),
            ColumnDef("los_days", INT),
        ],
        primary_key="id",
    ),
    [
        (1, "cardio", 4),
        (2, "cardio", 11),
        (3, "neuro", 2),
        (4, "neuro", 7),
        (5, "ortho", 3),
        (6, "cardio", 6),
    ],
)

QUERIES = [
    ("select count(*) as n from admissions", Priority.NORMAL),
    ("select sum(los_days) as total from admissions", Priority.NORMAL),
    ("select count(*) as long_stays from admissions where los_days >= 7",
     Priority.HIGH),
]

config = ProverConfig(k=6, limb_bits=4, value_bits=16, key_bits=16,
                      use_cache=False, telemetry=True)
with PoneglyphDB.open(db, config) as session:
    session.commit()
    print("database committed; starting the proving service\n")

    with session.serve(ServiceConfig(workers=2)) as service:
        jobs = [
            (sql, service.submit(sql, priority=priority))
            for sql, priority in QUERIES
        ]

        # Poll like a remote analyst would: queue position, then live
        # prover phase, then the terminal state.
        pending = {job_id for _, job_id in jobs}
        while pending:
            for sql, job_id in jobs:
                if job_id not in pending:
                    continue
                status = service.status(job_id)
                where = (
                    f"queued at position {status.queue_position}"
                    if status.queue_position is not None
                    else status.phase or status.state.value
                )
                print(f"  {job_id}: {where}")
                if status.state.finished:
                    pending.discard(job_id)
            time.sleep(0.5)

        responses = [service.wait(job_id) for _, job_id in jobs]
        print(f"\nall {len(responses)} proofs done "
              f"(stats: {service.stats()['workers']})")

    # The client side: one batched check for the whole drained batch.
    report = session.batch_verify(responses)
    report.require()
    print(
        f"batch of {report.proofs} proofs verified in "
        f"{report.elapsed_seconds:.2f}s "
        f"({report.deferred_openings} opening MSMs folded into one "
        f"{report.finalize_seconds:.2f}s check)"
    )
    for (sql, _), response in zip(jobs, responses):
        print(f"  {sql} -> {response.result}")
