"""A tour of the paper's custom gates (section 4), at the circuit level.

Builds each gate family directly against the PLONKish constraint
system, assigns the paper's own worked examples (Figure 5's group-by,
Figure 6's join), checks them with the MockProver, and shows a cheating
witness being caught.  Useful as a template for adding new operators.

Run:  python examples/custom_gates_tour.py
"""

from repro.algebra import SCALAR_FIELD as F
from repro.gates import (
    GroupByChip,
    LtFlagChip,
    PkFkJoinChip,
    RangeTable,
    RunningAggChip,
    SortChip,
)
from repro.plonkish import Assignment, ConstraintSystem, MockProver

K = 6  # 64-row circuit, 16-entry range table (4-bit limbs)

# ---------------------------------------------------------------- 4.1
print("== Range check / comparison (Designs C-D) ==")
cs = ConstraintSystem()
table = RangeTable(cs, bits=4)
q = cs.selector("q")
a, b = cs.advice_column("a"), cs.advice_column("b")
lt = LtFlagChip(cs, "lt", q.cur(), a.cur(), b.cur(), table, n_limbs=2)
asg = Assignment(cs, F, K)
table.assign(asg)
for row, (x, y) in enumerate([(3, 200), (200, 3), (77, 77)]):
    asg.assign(q, row, 1)
    asg.assign(a, row, x)
    asg.assign(b, row, y)
    flag = lt.assign_row(asg, row, x, y)
    print(f"  {x} < {y} -> check bit {flag}")
MockProver(cs, asg, F).assert_satisfied()
print("  constraints satisfied\n")

# ------------------------------------------------------------- 4.2-4.5
print("== Sort + group-by + SUM (paper Figure 5) ==")
cs = ConstraintSystem()
table = RangeTable(cs, bits=4)
k_col, v_col = cs.advice_column("d1"), cs.advice_column("d2")
valid = cs.advice_column("valid")
sort = SortChip(
    cs, "sort",
    [valid.cur() * k_col.cur(), valid.cur() * v_col.cur(), valid.cur()],
    0, table, n_limbs=2,
)
gb = GroupByChip(cs, "gb", sort.out[0].cur(), sort.out[0].prev())
agg = RunningAggChip(
    cs, "sum", gb.q_first.cur(), gb.q_rest.cur(), gb.same.cur(),
    sort.out[1].cur(),
)
data = [(1, 2), (3, 6), (2, 8), (1, 10)]  # exactly Figure 5's table
asg = Assignment(cs, F, K)
table.assign(asg)
for i, (key, value) in enumerate(data):
    asg.assign(k_col, i, key)
    asg.assign(v_col, i, value)
    asg.assign(valid, i, 1)
sorted_rows = sort.assign(asg, [(k, v, 1) for k, v in data])
keys = [r[0] for r in sorted_rows]
bins = gb.assign(asg, keys)
same = [0] + [1 if keys[i] == keys[i - 1] else 0 for i in range(1, len(keys))]
running = agg.assign(asg, [r[1] for r in sorted_rows], same)
print("  group sums:", {keys[end]: running[end] for _, end in bins})
MockProver(cs, asg, F).assert_satisfied()
print("  constraints satisfied (expected {1: 12, 2: 8, 3: 6})\n")

# ---------------------------------------------------------------- 4.4
print("== PK-FK join (paper Figure 6) ==")
cs = ConstraintSystem()
table = RangeTable(cs, bits=4)
fk = cs.advice_column("t1_d1")
t1v = cs.advice_column("t1_valid")
pk, d2 = cs.advice_column("t2_d1"), cs.advice_column("t2_d2")
t2v = cs.advice_column("t2_valid")
join = PkFkJoinChip(
    cs, "join", fk.cur(), t1v.cur(),
    [t2v.cur() * pk.cur(), t2v.cur() * d2.cur()], t2v.cur(),
    table, n_limbs=2,
)
t1 = [1, 3, 6, 1, 6]                      # Figure 6's D1 column
t2 = [(3, 11), (1, 12), (5, 13), (4, 14), (7, 15)]  # (D1', D2')
asg = Assignment(cs, F, K)
table.assign(asg)
for i, key in enumerate(t1):
    asg.assign(fk, i, key)
    asg.assign(t1v, i, 1)
for i, (key, value) in enumerate(t2):
    asg.assign(pk, i, key)
    asg.assign(d2, i, value)
    asg.assign(t2v, i, 1)
flags = join.assign(asg, [(key, 1) for key in t1], t2)
print("  contribution flags:", flags, "(keys 6 have no partner)")
MockProver(cs, asg, F).assert_satisfied()
print("  constraints satisfied")

# A cheating prover claiming fk=6 joined is caught.
asg.assign(join.part, 2, 1)
failures = MockProver(cs, asg, F).verify()
print(f"  cheating witness -> {len(failures)} constraint violations "
      f"(e.g. {failures[0].name})")
assert failures
